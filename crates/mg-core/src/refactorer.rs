//! The end-to-end decomposition/recomposition driver (paper Algorithm 3).

use crate::timing::KernelTimes;
use mg_grid::hierarchy::NotDyadic;
use mg_grid::pack::{for_each_level_offset, pack_level, unpack_level};
use mg_grid::{Axis, CoordSet, GridView, Hierarchy, NdArray, Real, Shape};
use mg_kernels::coeff;
use mg_kernels::correction::{compute_correction_staged, CorrectionScratch};
use mg_kernels::level::LevelCtx;
use mg_kernels::solve::ThomasFactors;
use mg_kernels::{mass, solve, tiled, transfer};
use mg_kernels::{ExecPlan, Layout, Threading};
use std::time::Instant;

/// Multigrid hierarchical data refactorer for one grid geometry.
///
/// Construction precomputes the level hierarchy, per-level coordinates and
/// working buffers; [`Refactorer::decompose`] and [`Refactorer::recompose`]
/// can then be called repeatedly on arrays of the same shape without
/// allocating.
///
/// After `decompose`, the array holds the refactored representation *in
/// place*: the coarsest grid `N_0` at its node positions and coefficient
/// class `C_l` at the `N_l \ N_{l-1}` positions. `recompose` is the exact
/// inverse (up to floating-point rounding).
///
/// The [`ExecPlan`] selects threading (serial reference vs rayon) *and*
/// layout (paper §III-C): with [`Layout::Packed`] each level subgrid is
/// gathered densely into working memory before its kernels run; with
/// [`Layout::InPlace`] the kernels operate directly on the finest array
/// through stride-aware views and the six-region segmented update — the
/// driver then performs **zero** `pack_level`/`unpack_level` calls (see
/// `mg_grid::pack::pack_call_count`). All four plans produce
/// bitwise-identical refactored arrays.
pub struct Refactorer<T> {
    hier: Hierarchy,
    coords: CoordSet<T>,
    /// `ctxs[l - 1]` is the kernel context of level `l`, `l = 1..=L`.
    ctxs: Vec<LevelCtx<T>>,
    work: Vec<T>,
    work2: Vec<T>,
    /// Halo planes for the tiled coefficient kernels.
    halo: Vec<T>,
    scratch: CorrectionScratch<T>,
    plan: ExecPlan,
    times: KernelTimes,
}

impl<T: Real> Refactorer<T> {
    /// Refactorer with uniform coordinates on `[0, 1]` per dimension.
    pub fn new(shape: Shape) -> Result<Self, NotDyadic> {
        Self::with_coords(shape, CoordSet::uniform(shape))
    }

    /// Refactorer with explicit (possibly nonuniform) coordinates.
    pub fn with_coords(shape: Shape, coords: CoordSet<T>) -> Result<Self, NotDyadic> {
        let hier = Hierarchy::new(shape)?;
        let mut ctxs = Vec::with_capacity(hier.nlevels());
        for l in 1..=hier.nlevels() {
            let ld = hier.level_dims(l);
            let cs = (0..shape.ndim())
                .map(|d| coords.level_coords(&hier, l, Axis(d)))
                .collect();
            ctxs.push(LevelCtx::new(ld.shape, cs));
        }
        Ok(Refactorer {
            hier,
            coords,
            ctxs,
            work: Vec::new(),
            work2: Vec::new(),
            halo: Vec::new(),
            scratch: CorrectionScratch::new(),
            plan: ExecPlan::serial(),
            times: KernelTimes::default(),
        })
    }

    /// Select the execution plan: threading × layout. Accepts an
    /// [`ExecPlan`] or, for convenience, a bare [`Threading`] (packed
    /// layout) or [`Layout`] (serial threading).
    pub fn plan(mut self, plan: impl Into<ExecPlan>) -> Self {
        self.plan = plan.into();
        self
    }

    /// The execution plan in use.
    pub fn current_plan(&self) -> ExecPlan {
        self.plan
    }

    /// The level hierarchy this refactorer was built for.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// The node coordinates in use.
    pub fn coords(&self) -> &CoordSet<T> {
        &self.coords
    }

    /// Take and reset the accumulated per-kernel timing breakdown.
    pub fn take_times(&mut self) -> KernelTimes {
        // Fold the correction pipeline's internal stage times in.
        let st = self.scratch.take_times();
        self.times.mm += st.mass;
        self.times.tm += st.transfer;
        self.times.sc += st.solve;
        std::mem::take(&mut self.times)
    }

    /// Bytes of working memory currently held (packing + ping-pong
    /// correction buffers) — the driver's extra footprint relative to the
    /// input array.
    pub fn working_bytes(&self) -> usize {
        (self.work.capacity()
            + self.work2.capacity()
            + self.halo.capacity()
            + self.scratch.capacity_elems())
            * T::BYTES
    }

    /// Decompose `data` in place, finest level to coarsest.
    pub fn decompose(&mut self, data: &mut NdArray<T>) {
        let full = self.hier.finest();
        assert_eq!(data.shape(), full, "data shape must match the hierarchy");
        for l in (1..=self.hier.nlevels()).rev() {
            self.decompose_level(data, l);
        }
    }

    /// Recompose `data` in place, coarsest level to finest. Exact inverse
    /// of [`Refactorer::decompose`].
    pub fn recompose(&mut self, data: &mut NdArray<T>) {
        let full = self.hier.finest();
        assert_eq!(data.shape(), full, "data shape must match the hierarchy");
        for l in 1..=self.hier.nlevels() {
            self.recompose_level(data, l);
        }
    }

    /// One decomposition step `l -> l-1` (public so walkthrough examples
    /// and the bench harnesses can observe intermediate states).
    pub fn decompose_level(&mut self, data: &mut NdArray<T>, l: usize) {
        match self.plan.layout {
            Layout::Packed => self.decompose_level_packed(data, l),
            Layout::InPlace => self.decompose_level_inplace(data, l),
            Layout::Tiled { tile } => self.decompose_level_tiled(data, l, tile),
            Layout::Strided => self.decompose_level_strided(data, l),
        }
    }

    /// One recomposition step `l-1 -> l`, the inverse of
    /// [`Refactorer::decompose_level`].
    pub fn recompose_level(&mut self, data: &mut NdArray<T>, l: usize) {
        match self.plan.layout {
            Layout::Packed => self.recompose_level_packed(data, l),
            Layout::InPlace => self.recompose_level_inplace(data, l),
            Layout::Tiled { tile } => self.recompose_level_tiled(data, l, tile),
            Layout::Strided => self.recompose_level_strided(data, l),
        }
    }

    fn decompose_level_packed(&mut self, data: &mut NdArray<T>, l: usize) {
        let full = self.hier.finest();
        let ld = self.hier.level_dims(l);
        let ctx = &self.ctxs[l - 1];

        // Pack the level subgrid into working memory (PN).
        let t0 = Instant::now();
        pack_level(data.as_slice(), full, &ld, &mut self.work);
        self.times.pn += t0.elapsed();

        // Compute coefficients (CC).
        let t0 = Instant::now();
        match self.plan.threading {
            Threading::Serial => coeff::compute_serial(&mut self.work, ctx),
            Threading::Parallel => {
                self.work2.clear();
                self.work2.resize(self.work.len(), T::ZERO);
                coeff::compute_parallel(&self.work, &mut self.work2, ctx);
                std::mem::swap(&mut self.work, &mut self.work2);
            }
        }
        self.times.cc += t0.elapsed();

        // Copy coefficients back to the input/output space (MC).
        let t0 = Instant::now();
        unpack_level(data.as_mut_slice(), full, &ld, &self.work);
        self.times.mc += t0.elapsed();

        // Zero coarse nodes so the staged buffer holds C_l (PN — fused with
        // packing in the paper's kernels).
        let t0 = Instant::now();
        coeff::zero_coarse(&mut self.work, ctx);
        let stage = self.scratch.stage();
        stage.clear();
        stage.extend_from_slice(&self.work);
        self.times.pn += t0.elapsed();

        // Global correction (MM/TM/SC, timed inside the scratch).
        let (z, zshape) = compute_correction_staged(ctx, self.plan, &mut self.scratch);
        debug_assert_eq!(zshape, self.hier.level_dims(l - 1).shape);

        // Apply the correction to the next-coarser nodes (MC, fused
        // unpack-add).
        let t0 = Instant::now();
        let ld_coarse = self.hier.level_dims(l - 1);
        apply_correction(data.as_mut_slice(), full, &ld_coarse, z, false);
        self.times.mc += t0.elapsed();
    }

    fn recompose_level_packed(&mut self, data: &mut NdArray<T>, l: usize) {
        let full = self.hier.finest();
        let ld = self.hier.level_dims(l);
        let ctx = &self.ctxs[l - 1];

        // Gather C_l: pack level nodes, zero the coarse positions (PN).
        let t0 = Instant::now();
        pack_level(data.as_slice(), full, &ld, &mut self.work);
        coeff::zero_coarse(&mut self.work, ctx);
        let stage = self.scratch.stage();
        stage.clear();
        stage.extend_from_slice(&self.work);
        self.times.pn += t0.elapsed();

        // Recompute the global correction from the stored coefficients.
        let (z, _) = compute_correction_staged(ctx, self.plan, &mut self.scratch);

        // Undo the correction on the coarse nodes (MC).
        let t0 = Instant::now();
        let ld_coarse = self.hier.level_dims(l - 1);
        apply_correction(data.as_mut_slice(), full, &ld_coarse, z, true);
        self.times.mc += t0.elapsed();

        // Re-pack (coarse nodes now hold the level-l nodal values) (PN).
        let t0 = Instant::now();
        pack_level(data.as_slice(), full, &ld, &mut self.work);
        self.times.pn += t0.elapsed();

        // Restore nodal values from coefficients (CC).
        let t0 = Instant::now();
        match self.plan.threading {
            Threading::Serial => coeff::restore_serial(&mut self.work, ctx),
            Threading::Parallel => {
                self.work2.clear();
                self.work2.resize(self.work.len(), T::ZERO);
                coeff::restore_parallel(&self.work, &mut self.work2, ctx);
                std::mem::swap(&mut self.work, &mut self.work2);
            }
        }
        self.times.cc += t0.elapsed();

        // Scatter back to the input/output space (MC).
        let t0 = Instant::now();
        unpack_level(data.as_mut_slice(), full, &ld, &self.work);
        self.times.mc += t0.elapsed();
    }

    /// In-place decomposition step: coefficients are computed directly on
    /// the level subgrid embedded in the finest array (no pack, no
    /// coefficient scatter), and only the odd nodes are gathered — fused
    /// with the coarse zeroing — to feed the segmented correction.
    fn decompose_level_inplace(&mut self, data: &mut NdArray<T>, l: usize) {
        let full = self.hier.finest();
        let ld = self.hier.level_dims(l);
        let ctx = &self.ctxs[l - 1];
        let view = GridView::embedded(full, &ld);

        // Compute coefficients in place on the strided subgrid (CC).
        let t0 = Instant::now();
        match self.plan.threading {
            Threading::Serial => coeff::compute_view_serial(data.as_mut_slice(), &view, ctx),
            Threading::Parallel => {
                coeff::compute_view_parallel(data.as_mut_slice(), &view, ctx, &mut self.work)
            }
        }
        self.times.cc += t0.elapsed();

        // Stage C_l for the correction: coefficients at odd nodes, zeros
        // at coarse nodes (PN — the one copy the algorithm performs
        // anyway; it reads only the odd nodes).
        let t0 = Instant::now();
        coeff::gather_coeffs_view(data.as_slice(), &view, ctx, self.scratch.stage());
        self.times.pn += t0.elapsed();

        // Global correction via the six-region segmented pipeline.
        let (z, zshape) = compute_correction_staged(ctx, self.plan, &mut self.scratch);
        debug_assert_eq!(zshape, self.hier.level_dims(l - 1).shape);

        // Apply the correction to the next-coarser nodes (MC).
        let t0 = Instant::now();
        let ld_coarse = self.hier.level_dims(l - 1);
        apply_correction(data.as_mut_slice(), full, &ld_coarse, z, false);
        self.times.mc += t0.elapsed();
    }

    /// In-place recomposition step, the exact inverse of
    /// [`Refactorer::decompose_level_inplace`].
    fn recompose_level_inplace(&mut self, data: &mut NdArray<T>, l: usize) {
        let full = self.hier.finest();
        let ld = self.hier.level_dims(l);
        let ctx = &self.ctxs[l - 1];
        let view = GridView::embedded(full, &ld);

        // Stage C_l (PN).
        let t0 = Instant::now();
        coeff::gather_coeffs_view(data.as_slice(), &view, ctx, self.scratch.stage());
        self.times.pn += t0.elapsed();

        // Recompute the global correction from the stored coefficients.
        let (z, _) = compute_correction_staged(ctx, self.plan, &mut self.scratch);

        // Undo the correction on the coarse nodes (MC).
        let t0 = Instant::now();
        let ld_coarse = self.hier.level_dims(l - 1);
        apply_correction(data.as_mut_slice(), full, &ld_coarse, z, true);
        self.times.mc += t0.elapsed();

        // Restore nodal values in place on the strided subgrid (CC).
        let t0 = Instant::now();
        match self.plan.threading {
            Threading::Serial => coeff::restore_view_serial(data.as_mut_slice(), &view, ctx),
            Threading::Parallel => {
                coeff::restore_view_parallel(data.as_mut_slice(), &view, ctx, &mut self.work)
            }
        }
        self.times.cc += t0.elapsed();
    }

    /// Tiled decomposition step: like the in-place step, but the
    /// coefficient kernel runs in cache-sized dim-0 tiles with halo
    /// exchange ([`mg_kernels::tiled`]) and the correction pipeline uses
    /// tile-sized segments plus the tiled axis-0 kernels. Still performs
    /// zero pack/unpack calls.
    fn decompose_level_tiled(&mut self, data: &mut NdArray<T>, l: usize, tile: usize) {
        let full = self.hier.finest();
        let ld = self.hier.level_dims(l);
        let ctx = &self.ctxs[l - 1];
        let view = GridView::embedded(full, &ld);
        let par = self.plan.threading == Threading::Parallel;

        // Compute coefficients tile-by-tile on the strided subgrid (CC).
        let t0 = Instant::now();
        tiled::compute_coeffs_tiled(data.as_mut_slice(), &view, ctx, tile, par, &mut self.halo);
        self.times.cc += t0.elapsed();

        // Stage C_l for the correction (PN).
        let t0 = Instant::now();
        coeff::gather_coeffs_view(data.as_slice(), &view, ctx, self.scratch.stage());
        self.times.pn += t0.elapsed();

        // Global correction via the tiled pipeline (MM/TM/SC).
        let (z, zshape) = compute_correction_staged(ctx, self.plan, &mut self.scratch);
        debug_assert_eq!(zshape, self.hier.level_dims(l - 1).shape);

        // Apply the correction to the next-coarser nodes (MC).
        let t0 = Instant::now();
        let ld_coarse = self.hier.level_dims(l - 1);
        apply_correction(data.as_mut_slice(), full, &ld_coarse, z, false);
        self.times.mc += t0.elapsed();
    }

    /// Tiled recomposition step, the exact inverse of
    /// [`Refactorer::decompose_level_tiled`].
    fn recompose_level_tiled(&mut self, data: &mut NdArray<T>, l: usize, tile: usize) {
        let full = self.hier.finest();
        let ld = self.hier.level_dims(l);
        let ctx = &self.ctxs[l - 1];
        let view = GridView::embedded(full, &ld);
        let par = self.plan.threading == Threading::Parallel;

        // Stage C_l (PN).
        let t0 = Instant::now();
        coeff::gather_coeffs_view(data.as_slice(), &view, ctx, self.scratch.stage());
        self.times.pn += t0.elapsed();

        // Recompute the global correction from the stored coefficients.
        let (z, _) = compute_correction_staged(ctx, self.plan, &mut self.scratch);

        // Undo the correction on the coarse nodes (MC).
        let t0 = Instant::now();
        let ld_coarse = self.hier.level_dims(l - 1);
        apply_correction(data.as_mut_slice(), full, &ld_coarse, z, true);
        self.times.mc += t0.elapsed();

        // Restore nodal values tile-by-tile (CC).
        let t0 = Instant::now();
        tiled::restore_coeffs_tiled(data.as_mut_slice(), &view, ctx, tile, par, &mut self.halo);
        self.times.cc += t0.elapsed();
    }

    /// Naive strided decomposition step (the paper's Fig. 7 baseline):
    /// every kernel — coefficients *and* the whole correction pipeline —
    /// walks the level subgrid embedded in the finest array, with strides
    /// doubling at each axis reduction. Threading applies to the
    /// grid-processing kernels; the linear pipeline is the serial strided
    /// walk (the naive design has no fiber batching to parallelize).
    fn decompose_level_strided(&mut self, data: &mut NdArray<T>, l: usize) {
        let full = self.hier.finest();
        let ld = self.hier.level_dims(l);
        let ctx = &self.ctxs[l - 1];
        let view = GridView::embedded(full, &ld);

        // Compute coefficients in place on the strided subgrid (CC).
        let t0 = Instant::now();
        match self.plan.threading {
            Threading::Serial => coeff::compute_view_serial(data.as_mut_slice(), &view, ctx),
            Threading::Parallel => {
                coeff::compute_view_parallel(data.as_mut_slice(), &view, ctx, &mut self.work2)
            }
        }
        self.times.cc += t0.elapsed();

        // Stage C_l embedded at the level positions of the working buffer
        // (PN) — no packing: the copy keeps the strided geometry.
        let t0 = Instant::now();
        coeff::stage_coeffs_embedded(data.as_slice(), &view, ctx, &mut self.work);
        self.times.pn += t0.elapsed();

        // Naive embedded correction.
        let zview = strided_correction(ctx, view, &mut self.work, &mut self.times);
        debug_assert_eq!(zview.shape(), self.hier.level_dims(l - 1).shape);

        // Apply the correction at the embedded coarse positions (MC).
        let t0 = Instant::now();
        let slice = data.as_mut_slice();
        let work = &self.work;
        zview.for_each_offset(|_, unpacked| {
            slice[unpacked] += work[unpacked];
        });
        self.times.mc += t0.elapsed();
    }

    /// Strided recomposition step, the exact inverse of
    /// [`Refactorer::decompose_level_strided`].
    fn recompose_level_strided(&mut self, data: &mut NdArray<T>, l: usize) {
        let full = self.hier.finest();
        let ld = self.hier.level_dims(l);
        let ctx = &self.ctxs[l - 1];
        let view = GridView::embedded(full, &ld);

        // Stage C_l embedded (PN).
        let t0 = Instant::now();
        coeff::stage_coeffs_embedded(data.as_slice(), &view, ctx, &mut self.work);
        self.times.pn += t0.elapsed();

        // Recompute the correction from the stored coefficients.
        let zview = strided_correction(ctx, view, &mut self.work, &mut self.times);

        // Undo the correction on the coarse nodes (MC).
        let t0 = Instant::now();
        {
            let slice = data.as_mut_slice();
            let work = &self.work;
            zview.for_each_offset(|_, unpacked| {
                slice[unpacked] -= work[unpacked];
            });
        }
        self.times.mc += t0.elapsed();

        // Restore nodal values in place on the strided subgrid (CC).
        let t0 = Instant::now();
        match self.plan.threading {
            Threading::Serial => coeff::restore_view_serial(data.as_mut_slice(), &view, ctx),
            Threading::Parallel => {
                coeff::restore_view_parallel(data.as_mut_slice(), &view, ctx, &mut self.work2)
            }
        }
        self.times.cc += t0.elapsed();
    }
}

/// Add (decompose) or subtract (recompose) the packed coarse-grid
/// correction `z` at the next-coarser nodes of `data` — the MC step every
/// dense-staged layout driver ends with.
fn apply_correction<T: Real>(
    data: &mut [T],
    full: Shape,
    ld_coarse: &mg_grid::hierarchy::LevelDims,
    z: &[T],
    undo: bool,
) {
    for_each_level_offset(full, ld_coarse, |packed, unpacked| {
        if undo {
            data[unpacked] -= z[packed];
        } else {
            data[unpacked] += z[packed];
        }
    });
}

/// The naive strided correction pipeline: mass / restriction / solve all
/// walk the subgrid embedded in `buf` through stride-aware views, the
/// restriction writing coarse node `j` over fine node `2j` so the view's
/// stride doubles per decimating axis. Returns the view of the embedded
/// coarse-grid correction. Arithmetic matches the packed pipeline
/// operation for operation, so all layouts agree bitwise.
fn strided_correction<T: Real>(
    ctx: &LevelCtx<T>,
    view: GridView,
    buf: &mut [T],
    times: &mut KernelTimes,
) -> GridView {
    let mut v = view;
    for d in 0..ctx.ndim() {
        let axis = Axis(d);
        if !ctx.decimates(axis) {
            continue; // identity factor
        }
        let fine_coords = ctx.coords(axis);

        let t0 = Instant::now();
        mass::mass_apply_view_serial(buf, &v, axis, fine_coords);
        let t1 = Instant::now();
        times.mm += t1 - t0;

        transfer::transfer_apply_view_inplace(buf, &v, axis, fine_coords);
        v = v.coarsened(axis);
        let t2 = Instant::now();
        times.tm += t2 - t1;

        let factors = ThomasFactors::new(&ctx.coarse_coords(axis));
        solve::solve_view_serial(buf, &v, axis, &factors);
        times.sc += t2.elapsed();
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_grid::real::max_abs_diff;

    fn wiggle(shape: Shape) -> NdArray<f64> {
        NdArray::from_fn(shape, |idx| {
            let mut v = 0.7;
            for (d, &i) in idx.iter().enumerate() {
                v += ((i * (d + 3) * 7 + 13) % 29) as f64 * 0.05 - 0.6;
            }
            v
        })
    }

    fn round_trip(shape: Shape, plan: ExecPlan, stretch: f64) -> f64 {
        let coords = CoordSet::<f64>::stretched(shape, stretch);
        let mut r = Refactorer::with_coords(shape, coords).unwrap().plan(plan);
        let orig = wiggle(shape);
        let mut data = orig.clone();
        r.decompose(&mut data);
        assert_ne!(data, orig, "decomposition must change the data");
        r.recompose(&mut data);
        max_abs_diff(data.as_slice(), orig.as_slice())
    }

    #[test]
    fn round_trip_1d() {
        assert!(round_trip(Shape::d1(33), ExecPlan::serial(), 0.3) < 1e-11);
    }

    #[test]
    fn round_trip_2d_serial_and_parallel() {
        for plan in ExecPlan::ALL {
            let err = round_trip(Shape::d2(17, 33), plan, 0.25);
            assert!(err < 1e-11, "{plan:?}: {err}");
        }
    }

    #[test]
    fn round_trip_3d() {
        for plan in ExecPlan::ALL {
            let err = round_trip(Shape::d3(9, 17, 9), plan, 0.2);
            assert!(err < 1e-11, "{plan:?}: {err}");
        }
    }

    #[test]
    fn round_trip_mixed_levels() {
        // dims bottom out at different steps
        assert!(round_trip(Shape::d2(5, 33), ExecPlan::serial(), 0.2) < 1e-11);
        assert!(round_trip(Shape::d3(3, 17, 5), ExecPlan::serial(), 0.2) < 1e-11);
    }

    #[test]
    fn round_trip_minimum_grid() {
        // 3 nodes: one level; 2 nodes in one dim.
        assert!(round_trip(Shape::d1(3), ExecPlan::serial(), 0.0) < 1e-13);
        assert!(round_trip(Shape::d2(2, 3), ExecPlan::serial(), 0.0) < 1e-13);
    }

    #[test]
    fn serial_and_parallel_produce_identical_decompositions() {
        let shape = Shape::d3(9, 9, 17);
        let orig = wiggle(shape);
        let coords = CoordSet::<f64>::stretched(shape, 0.25);

        let mut a = orig.clone();
        Refactorer::with_coords(shape, coords.clone())
            .unwrap()
            .plan(ExecPlan::serial())
            .decompose(&mut a);

        let mut b = orig.clone();
        Refactorer::with_coords(shape, coords)
            .unwrap()
            .plan(ExecPlan::parallel())
            .decompose(&mut b);

        assert!(max_abs_diff(a.as_slice(), b.as_slice()) < 1e-12);
    }

    #[test]
    fn linear_field_decomposes_to_coarse_subsample() {
        // For (bi)linear data every coefficient and correction vanishes, so
        // the refactored array equals: nodal values at N_0 positions, zeros
        // elsewhere... more precisely coefficients are zero; coarse values
        // keep the plane's values.
        let shape = Shape::d2(9, 9);
        let coords = CoordSet::<f64>::stretched(shape, 0.3);
        let plane = NdArray::sample(shape, coords.as_vecs(), |x| 2.0 * x[0] - 3.0 * x[1] + 0.5);
        let mut data = plane.clone();
        let mut r = Refactorer::with_coords(shape, coords).unwrap();
        r.decompose(&mut data);
        let h = r.hierarchy().clone();
        // All non-coarsest positions are coefficients == 0.
        let ld0 = h.level_dims(0);
        let mut coarse_offsets = std::collections::HashSet::new();
        for_each_level_offset(shape, &ld0, |_, u| {
            coarse_offsets.insert(u);
        });
        for (off, (&v, &orig)) in data.as_slice().iter().zip(plane.as_slice()).enumerate() {
            if coarse_offsets.contains(&off) {
                assert!((v - orig).abs() < 1e-12, "coarse node changed");
            } else {
                assert!(v.abs() < 1e-12, "coefficient at {off} = {v}");
            }
        }
    }

    #[test]
    fn repeated_use_reuses_buffers() {
        let shape = Shape::d2(17, 17);
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut data = wiggle(shape);
        r.decompose(&mut data);
        let bytes_after_first = r.working_bytes();
        for _ in 0..3 {
            r.recompose(&mut data);
            r.decompose(&mut data);
        }
        assert_eq!(r.working_bytes(), bytes_after_first);
    }

    #[test]
    fn all_plans_produce_identical_decompositions() {
        // The four plans perform the same arithmetic in the same order, so
        // the refactored arrays must agree bit for bit.
        let shape = Shape::d3(9, 17, 9);
        let orig = wiggle(shape);
        let coords = CoordSet::<f64>::stretched(shape, 0.25);
        let mut reference: Option<NdArray<f64>> = None;
        for plan in ExecPlan::ALL {
            let mut data = orig.clone();
            Refactorer::with_coords(shape, coords.clone())
                .unwrap()
                .plan(plan)
                .decompose(&mut data);
            match &reference {
                None => reference = Some(data),
                Some(r) => assert_eq!(&data, r, "{plan:?} diverged"),
            }
        }
    }

    #[test]
    fn inplace_layout_performs_zero_pack_calls() {
        // Acceptance criterion: the in-place plan must not touch the
        // gather/scatter primitives on the decompose/recompose hot path.
        let shape = Shape::d3(9, 9, 17);
        let mut r = Refactorer::<f64>::new(shape)
            .unwrap()
            .plan(ExecPlan::parallel().with_layout(Layout::InPlace));
        let mut data = wiggle(shape);
        let packs = mg_grid::pack::pack_call_count();
        let unpacks = mg_grid::pack::unpack_call_count();
        r.decompose(&mut data);
        r.recompose(&mut data);
        assert_eq!(mg_grid::pack::pack_call_count(), packs);
        assert_eq!(mg_grid::pack::unpack_call_count(), unpacks);

        // ... while the packed plan does (sanity check of the counter).
        let mut rp = Refactorer::<f64>::new(shape).unwrap();
        rp.decompose(&mut data);
        assert!(mg_grid::pack::pack_call_count() > packs);
    }

    #[test]
    fn tiled_and_strided_layouts_perform_zero_pack_calls() {
        // Neither new layout may touch the gather/scatter primitives.
        let shape = Shape::d3(9, 9, 17);
        let mut data = wiggle(shape);
        for layout in [Layout::Tiled { tile: 3 }, Layout::Strided] {
            let mut r = Refactorer::<f64>::new(shape)
                .unwrap()
                .plan(ExecPlan::parallel().with_layout(layout));
            let packs = mg_grid::pack::pack_call_count();
            let unpacks = mg_grid::pack::unpack_call_count();
            r.decompose(&mut data);
            r.recompose(&mut data);
            assert_eq!(mg_grid::pack::pack_call_count(), packs, "{layout:?}");
            assert_eq!(mg_grid::pack::unpack_call_count(), unpacks, "{layout:?}");
        }
    }

    #[test]
    fn tiled_matches_packed_bitwise_across_tile_sizes() {
        // Including tile = 1, non-divisible tiles, and tile > extent.
        let shape = Shape::d3(9, 17, 5);
        let orig = wiggle(shape);
        let coords = CoordSet::<f64>::stretched(shape, 0.25);
        let mut reference = orig.clone();
        Refactorer::with_coords(shape, coords.clone())
            .unwrap()
            .decompose(&mut reference);
        for tile in [1usize, 2, 3, 5, 7, 32, 10_000] {
            for threading in [Threading::Serial, Threading::Parallel] {
                let plan = ExecPlan::new(threading, Layout::Tiled { tile });
                let mut r = Refactorer::with_coords(shape, coords.clone())
                    .unwrap()
                    .plan(plan);
                let mut data = orig.clone();
                r.decompose(&mut data);
                assert_eq!(data, reference, "decompose diverged: {plan:?}");
                r.recompose(&mut data);
                let err = max_abs_diff(data.as_slice(), orig.as_slice());
                assert!(err < 1e-11, "{plan:?}: {err}");
            }
        }
    }

    #[test]
    fn steady_state_decomposition_grows_no_correction_scratch() {
        // The correction pipeline must reuse its scratch (including the
        // returned z slice) once warm — the allocation analogue of the
        // zero-pack-calls guarantee.
        let shape = Shape::d2(33, 33);
        for plan in ExecPlan::ALL {
            let mut r = Refactorer::<f64>::new(shape).unwrap().plan(plan);
            let mut data = wiggle(shape);
            r.decompose(&mut data);
            r.recompose(&mut data);
            let before = mg_kernels::correction::scratch_alloc_count();
            for _ in 0..3 {
                r.decompose(&mut data);
                r.recompose(&mut data);
            }
            assert_eq!(
                mg_kernels::correction::scratch_alloc_count(),
                before,
                "{plan:?} grew correction scratch in steady state"
            );
        }
    }

    #[test]
    fn steady_state_decomposition_spawns_no_threads() {
        // The rayon shim keeps a persistent worker pool: after the first
        // parallel dispatch warms it up, further decompose/recompose
        // passes must not spawn a single OS thread — the thread analogue
        // of the zero-pack-calls and zero-realloc guarantees.
        let shape = Shape::d2(33, 33);
        for plan in ExecPlan::ALL {
            let mut r = Refactorer::<f64>::new(shape).unwrap().plan(plan);
            let mut data = wiggle(shape);
            r.decompose(&mut data);
            r.recompose(&mut data);
            let before = rayon::thread_spawn_count();
            for _ in 0..3 {
                r.decompose(&mut data);
                r.recompose(&mut data);
            }
            assert_eq!(
                rayon::thread_spawn_count(),
                before,
                "{plan:?} spawned threads in steady state"
            );
        }
    }

    #[test]
    fn inplace_round_trip_mixed_levels_and_edges() {
        for plan in [
            ExecPlan::from(Layout::InPlace),
            ExecPlan::parallel().with_layout(Layout::InPlace),
        ] {
            assert!(round_trip(Shape::d2(5, 33), plan, 0.2) < 1e-11);
            assert!(round_trip(Shape::d3(3, 17, 5), plan, 0.2) < 1e-11);
            assert!(round_trip(Shape::d1(33), plan, 0.3) < 1e-11);
            assert!(round_trip(Shape::d1(3), plan, 0.0) < 1e-13);
            assert!(round_trip(Shape::d2(2, 3), plan, 0.0) < 1e-13);
        }
    }

    #[test]
    fn tiled_and_strided_round_trip_mixed_levels_and_edges() {
        for layout in [Layout::Tiled { tile: 2 }, Layout::tiled(), Layout::Strided] {
            for plan in [
                ExecPlan::from(layout),
                ExecPlan::parallel().with_layout(layout),
            ] {
                assert!(round_trip(Shape::d2(5, 33), plan, 0.2) < 1e-11, "{plan:?}");
                assert!(
                    round_trip(Shape::d3(3, 17, 5), plan, 0.2) < 1e-11,
                    "{plan:?}"
                );
                assert!(round_trip(Shape::d1(33), plan, 0.3) < 1e-11, "{plan:?}");
                assert!(round_trip(Shape::d1(3), plan, 0.0) < 1e-13, "{plan:?}");
                assert!(round_trip(Shape::d2(2, 3), plan, 0.0) < 1e-13, "{plan:?}");
            }
        }
    }

    #[test]
    fn timing_breakdown_is_populated() {
        let shape = Shape::d2(65, 65);
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut data = wiggle(shape);
        r.decompose(&mut data);
        let t = r.take_times();
        assert!(t.total().as_nanos() > 0);
        assert!(t.cc.as_nanos() > 0);
        assert!(t.mm.as_nanos() > 0);
        assert!(t.sc.as_nanos() > 0);
        // take_times resets
        assert_eq!(r.take_times().total().as_nanos(), 0);
    }

    #[test]
    fn f32_round_trip() {
        let shape = Shape::d2(33, 17);
        let coords = CoordSet::<f32>::uniform(shape);
        let mut r = Refactorer::with_coords(shape, coords).unwrap();
        let orig = NdArray::from_fn(shape, |i| ((i[0] * 31 + i[1] * 17) % 23) as f32 * 0.1);
        let mut data = orig.clone();
        r.decompose(&mut data);
        r.recompose(&mut data);
        assert!(max_abs_diff(data.as_slice(), orig.as_slice()) < 1e-4);
    }

    #[test]
    fn single_level_walkthrough_matches_full() {
        let shape = Shape::d2(9, 9);
        let orig = wiggle(shape);
        let mut full = orig.clone();
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        r.decompose(&mut full);

        let mut stepped = orig.clone();
        let mut r2 = Refactorer::<f64>::new(shape).unwrap();
        for l in (1..=r2.hierarchy().nlevels()).rev() {
            r2.decompose_level(&mut stepped, l);
        }
        assert_eq!(full, stepped);
    }
}

#[cfg(test)]
mod tests_4d {
    use super::*;
    use mg_grid::real::max_abs_diff;

    /// 4-D refactoring (time-varying 3-D fields): the whole stack is
    /// dimension-generic up to MAX_DIMS, so a 4-D hierarchy must round
    /// trip like any other.
    #[test]
    fn round_trip_4d() {
        let shape = Shape::new(&[5, 5, 9, 5]);
        let coords = CoordSet::<f64>::stretched(shape, 0.2);
        let orig = NdArray::from_fn(shape, |i| {
            ((i[0] * 3 + i[1] * 5 + i[2] * 7 + i[3] * 11) % 13) as f64 * 0.17 - 1.0
        });
        for plan in ExecPlan::ALL {
            let mut r = Refactorer::with_coords(shape, coords.clone())
                .unwrap()
                .plan(plan);
            let mut data = orig.clone();
            r.decompose(&mut data);
            assert_ne!(data, orig);
            r.recompose(&mut data);
            let err = max_abs_diff(data.as_slice(), orig.as_slice());
            assert!(err < 1e-11, "{plan:?}: {err}");
        }
    }

    #[test]
    fn quadrilinear_field_has_zero_coefficients_4d() {
        let shape = Shape::new(&[3, 5, 3, 5]);
        let coords = CoordSet::<f64>::uniform(shape);
        let plane = NdArray::sample(shape, coords.as_vecs(), |x| {
            1.0 + x[0] - 2.0 * x[1] + 3.0 * x[2] - 0.5 * x[3]
        });
        let mut r = Refactorer::with_coords(shape, coords).unwrap();
        let mut data = plane.clone();
        r.decompose(&mut data);
        // Everything except the 2^4 coarsest corners must be ~0
        // (coefficients of a multilinear function vanish).
        let hier = r.hierarchy().clone();
        let ld0 = hier.level_dims(0);
        let mut coarse = std::collections::HashSet::new();
        mg_grid::pack::for_each_level_offset(shape, &ld0, |_, u| {
            coarse.insert(u);
        });
        for (off, &v) in data.as_slice().iter().enumerate() {
            if !coarse.contains(&off) {
                assert!(v.abs() < 1e-12, "coefficient at {off}: {v}");
            }
        }
    }
}

#[cfg(test)]
mod tests_edge {
    use super::*;

    #[test]
    fn zero_level_grid_is_a_no_op() {
        // All dims at 2 nodes: nlevels == 0, nothing to decompose.
        let shape = Shape::d2(2, 2);
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        assert_eq!(r.hierarchy().nlevels(), 0);
        let orig = NdArray::from_vec(shape, vec![1.0, 2.0, 3.0, 4.0]);
        let mut data = orig.clone();
        r.decompose(&mut data);
        assert_eq!(data, orig, "no levels, no change");
        r.recompose(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn constant_field_decomposes_to_constant_coarse_and_zero_coeffs() {
        let shape = Shape::d2(9, 9);
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut data = NdArray::from_fn(shape, |_| 5.0);
        r.decompose(&mut data);
        let hier = r.hierarchy().clone();
        let mut coarse = std::collections::HashSet::new();
        mg_grid::pack::for_each_level_offset(shape, &hier.level_dims(0), |_, u| {
            coarse.insert(u);
        });
        for (off, &v) in data.as_slice().iter().enumerate() {
            if coarse.contains(&off) {
                assert!((v - 5.0).abs() < 1e-12, "coarse node changed: {v}");
            } else {
                assert!(v.abs() < 1e-12, "nonzero coefficient {v} at {off}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must match the hierarchy")]
    fn shape_mismatch_panics() {
        let mut r = Refactorer::<f64>::new(Shape::d1(9)).unwrap();
        let mut wrong = NdArray::<f64>::zeros(Shape::d1(17));
        r.decompose(&mut wrong);
    }
}
