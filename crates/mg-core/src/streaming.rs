//! Streaming decomposition: overlap per-level kernels with write-out.
//!
//! Decomposition finalizes coefficient class `C_l` the moment level `l`'s
//! step completes — later steps only touch the coarser `N_{l-1}` nodes. So
//! the end-to-end refactor-then-write job does not have to serialize:
//! while the compute thread decomposes level `l - 1`, an I/O thread writes
//! class `C_l` out. This is the CPU rendering of the paper's Fig. 8 stream
//! schedule (kernels on one CUDA stream, transfers on another) applied to
//! the Fig. 1 in-situ loop, where refactoring throughput only matters
//! insofar as the combined refactor + write pipeline keeps up with the
//! simulation.
//!
//! The pipeline is double-buffered: two class buffers circulate between
//! the compute thread and the single I/O thread, so compute never waits
//! unless the sink falls a full class behind, and memory stays bounded at
//! two classes regardless of grid size.

use crate::refactorer::Refactorer;
use mg_grid::pack::for_each_class_offset;
use mg_grid::{NdArray, Real};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Destination of streamed coefficient classes.
///
/// Classes arrive in completion order — finest (`C_L`) first, the coarsest
/// nodal class `0` last — each exactly once, on a dedicated I/O thread.
pub trait ClassSink<T> {
    /// Persist one class payload. Values follow the canonical class
    /// ordering of [`mg_grid::pack::for_each_class_offset`].
    fn write_class(&mut self, class: usize, values: &[T]) -> std::io::Result<()>;
}

/// Every in-memory `Vec` collector is a sink (classes indexed by id;
/// useful for tests and for staging into other transports).
impl<T: Real> ClassSink<T> for Vec<Option<Vec<T>>> {
    fn write_class(&mut self, class: usize, values: &[T]) -> std::io::Result<()> {
        if self.len() <= class {
            self.resize(class + 1, None);
        }
        self[class] = Some(values.to_vec());
        Ok(())
    }
}

/// Timing breakdown of one streamed decomposition.
#[derive(Copy, Clone, Debug, Default)]
pub struct StreamStats {
    /// Wall-clock of the whole pipeline (compute + exposed I/O).
    pub wall: Duration,
    /// Compute-thread work: `decompose_level` plus class extraction (both
    /// run serially on the calling thread, so both count as compute when
    /// attributing the remainder of `wall` to exposed I/O).
    pub compute: Duration,
    /// Time the I/O thread spent inside the sink.
    pub io: Duration,
    /// Classes handed to the sink (`L + 1`).
    pub classes_written: usize,
}

impl StreamStats {
    /// I/O time not hidden under compute (`wall - compute`): the pipeline's
    /// exposed cost relative to a compute-only decomposition.
    pub fn exposed_io(&self) -> Duration {
        self.wall.saturating_sub(self.compute)
    }

    /// Fraction of I/O time that overlapped with compute (1.0 = fully
    /// hidden, the Fig. 1 goal).
    pub fn hidden_fraction(&self) -> f64 {
        if self.io.is_zero() {
            return 1.0;
        }
        let hidden = self.io.saturating_sub(self.exposed_io());
        hidden.as_secs_f64() / self.io.as_secs_f64()
    }
}

/// Decompose `data` in place while streaming each finished coefficient
/// class to `sink` from a dedicated I/O thread (double-buffered).
///
/// On return, `data` holds exactly the refactored representation a plain
/// [`Refactorer::decompose`] produces (same plan, bitwise identical), and
/// the sink has received classes `L, L-1, ..., 1, 0`. Sink errors abort
/// the write-out (remaining classes are dropped) but the decomposition
/// itself always completes; the first error is returned.
pub fn decompose_streaming<T, S>(
    r: &mut Refactorer<T>,
    data: &mut NdArray<T>,
    sink: &mut S,
) -> std::io::Result<StreamStats>
where
    T: Real,
    S: ClassSink<T> + Send,
{
    let hier = r.hierarchy().clone();
    let nlevels = hier.nlevels();
    let t_wall = Instant::now();
    let mut compute = Duration::ZERO;

    let (work_tx, work_rx) = mpsc::channel::<(usize, Vec<T>)>();
    let (back_tx, back_rx) = mpsc::channel::<Vec<T>>();
    // Two buffers in flight: one being filled, one being written.
    for _ in 0..2 {
        back_tx.send(Vec::new()).expect("receiver alive");
    }

    let (io_time, io_result) = std::thread::scope(|s| {
        let io = s.spawn(move || {
            let mut io_time = Duration::ZERO;
            let mut result = Ok(());
            while let Ok((class, buf)) = work_rx.recv() {
                let t0 = Instant::now();
                result = sink.write_class(class, &buf);
                io_time += t0.elapsed();
                if result.is_err() {
                    // Stop consuming; the compute side sees the closed
                    // channels and finishes the decomposition alone.
                    break;
                }
                let _ = back_tx.send(buf);
            }
            (io_time, result)
        });

        let ship = |class: usize, data: &NdArray<T>, compute: &mut Duration| {
            let Ok(mut buf) = back_rx.recv() else {
                return; // I/O thread bailed; keep decomposing.
            };
            // Extraction is compute-thread work (the recv wait above is
            // backpressure, not compute).
            let t0 = Instant::now();
            buf.clear();
            for_each_class_offset(&hier, class, |off| buf.push(data.as_slice()[off]));
            *compute += t0.elapsed();
            let _ = work_tx.send((class, buf));
        };

        for l in (1..=nlevels).rev() {
            let t0 = Instant::now();
            r.decompose_level(data, l);
            compute += t0.elapsed();
            ship(l, data, &mut compute);
        }
        // The coarsest nodal values are final once every level is done.
        ship(0, data, &mut compute);
        drop(work_tx);
        io.join().expect("I/O thread panicked")
    });
    io_result?;

    Ok(StreamStats {
        wall: t_wall.elapsed(),
        compute,
        io: io_time,
        classes_written: nlevels + 1,
    })
}

/// Source of streamed coefficient classes for [`recompose_streaming`] —
/// the consumer-side mirror of [`ClassSink`].
///
/// Classes are requested in recomposition order — coarsest (`0`) first,
/// `C_L` last — from a dedicated I/O thread, so a source backed by the
/// batch wire format (whose classes are stored coarsest-first) can stream
/// tier-by-tier without ever holding the whole payload. A prefix source
/// returns zero-filled buffers for classes it does not hold.
pub trait ClassSource<T> {
    /// Fetch class `class`'s values, in the canonical ordering of
    /// [`mg_grid::pack::for_each_class_offset`].
    fn read_class(&mut self, class: usize) -> std::io::Result<Vec<T>>;
}

/// Every in-memory class collection is a source (classes indexed by id;
/// the inverse of the `Vec` [`ClassSink`]).
impl<T: Real> ClassSource<T> for Vec<Vec<T>> {
    fn read_class(&mut self, class: usize) -> std::io::Result<Vec<T>> {
        self.get(class)
            .cloned()
            .ok_or_else(|| std::io::Error::other(format!("class {class} not in source")))
    }
}

/// Recompose an approximation from classes streamed out of `source`,
/// overlapping the read of class `l + 1` with the level-`l` recomposition
/// step (the consumer mirror of [`decompose_streaming`]).
///
/// Returns the reconstructed array plus pipeline stats ([`StreamStats`]
/// with `classes_written` counting classes *consumed*). The result is
/// bitwise identical to assembling every class into an array and running a
/// plain [`Refactorer::recompose`]: class positions are disjoint, so
/// scattering class `l` just before its level's step is equivalent to
/// scattering everything up front. Source errors abort the pipeline and
/// surface as the returned error.
pub fn recompose_streaming<T, S>(
    r: &mut Refactorer<T>,
    source: &mut S,
) -> std::io::Result<(NdArray<T>, StreamStats)>
where
    T: Real,
    S: ClassSource<T> + Send,
{
    let hier = r.hierarchy().clone();
    let nlevels = hier.nlevels();
    let t_wall = Instant::now();
    let mut compute = Duration::ZERO;
    let mut out = NdArray::<T>::zeros(hier.finest());

    // Bounded to two classes in flight: one being consumed, one being
    // prefetched — same memory bound as the producer pipeline.
    let (work_tx, work_rx) = mpsc::sync_channel::<(usize, Vec<T>)>(2);

    let (io_time, io_result) = std::thread::scope(|s| {
        let io = s.spawn(move || {
            let mut io_time = Duration::ZERO;
            for class in 0..=nlevels {
                let t0 = Instant::now();
                let res = source.read_class(class);
                io_time += t0.elapsed();
                match res {
                    Ok(buf) => {
                        if work_tx.send((class, buf)).is_err() {
                            break; // consumer bailed
                        }
                    }
                    Err(e) => return (io_time, Err(e)),
                }
            }
            (io_time, Ok(()))
        });

        let mut consume_err = None;
        for class in 0..=nlevels {
            let Ok((got, buf)) = work_rx.recv() else {
                break; // I/O thread errored; its error is returned below.
            };
            debug_assert_eq!(got, class);
            let expect = if class == 0 {
                hier.level_len(0)
            } else {
                hier.class_len(class)
            };
            if buf.len() != expect {
                consume_err = Some(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("class {class}: {} values, expected {expect}", buf.len()),
                ));
                break;
            }
            let t0 = Instant::now();
            {
                let slice = out.as_mut_slice();
                let mut it = buf.iter();
                for_each_class_offset(&hier, class, |off| {
                    slice[off] = *it.next().expect("length checked above");
                });
            }
            if class >= 1 {
                r.recompose_level(&mut out, class);
            }
            compute += t0.elapsed();
        }
        drop(work_rx);
        let (io_time, io_result) = io.join().expect("I/O thread panicked");
        (io_time, consume_err.map(Err).unwrap_or(io_result))
    });
    io_result?;

    Ok((
        out,
        StreamStats {
            wall: t_wall.elapsed(),
            compute,
            io: io_time,
            classes_written: nlevels + 1,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_grid::Shape;
    use mg_kernels::{ExecPlan, Layout};

    fn field(shape: Shape) -> NdArray<f64> {
        NdArray::from_fn(shape, |i| {
            ((i.iter()
                .enumerate()
                .map(|(d, &v)| v * (d + 3))
                .sum::<usize>()
                * 31)
                % 89) as f64
                * 0.043
                - 1.7
        })
    }

    #[test]
    fn streamed_classes_match_plain_decomposition() {
        let shape = Shape::d2(17, 33);
        for plan in [
            ExecPlan::serial(),
            ExecPlan::parallel().with_layout(Layout::tiled()),
        ] {
            let orig = field(shape);

            let mut plain = orig.clone();
            let mut r1 = Refactorer::<f64>::new(shape).unwrap().plan(plan);
            r1.decompose(&mut plain);
            let hier = r1.hierarchy().clone();

            let mut streamed = orig.clone();
            let mut r2 = Refactorer::<f64>::new(shape).unwrap().plan(plan);
            let mut sink: Vec<Option<Vec<f64>>> = Vec::new();
            let stats = decompose_streaming(&mut r2, &mut streamed, &mut sink).unwrap();

            assert_eq!(streamed, plain, "streaming must not perturb results");
            assert_eq!(stats.classes_written, hier.nlevels() + 1);
            assert_eq!(sink.len(), hier.nlevels() + 1);
            for k in 0..=hier.nlevels() {
                let got = sink[k].as_ref().expect("class written");
                let mut expect = Vec::new();
                for_each_class_offset(&hier, k, |off| expect.push(plain.as_slice()[off]));
                assert_eq!(got, &expect, "class {k}");
            }
        }
    }

    #[test]
    fn zero_level_grid_streams_single_class() {
        let shape = Shape::d2(2, 2);
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut data = field(shape);
        let orig = data.clone();
        let mut sink: Vec<Option<Vec<f64>>> = Vec::new();
        let stats = decompose_streaming(&mut r, &mut data, &mut sink).unwrap();
        assert_eq!(stats.classes_written, 1);
        assert_eq!(sink[0].as_ref().unwrap(), orig.as_slice());
    }

    #[test]
    fn sink_errors_surface_but_decomposition_completes() {
        struct FailingSink;
        impl ClassSink<f64> for FailingSink {
            fn write_class(&mut self, _: usize, _: &[f64]) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }
        let shape = Shape::d2(17, 17);
        let orig = field(shape);
        let mut data = orig.clone();
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let err = decompose_streaming(&mut r, &mut data, &mut FailingSink).unwrap_err();
        assert_eq!(err.to_string(), "disk full");
        // The array still holds the full decomposition.
        let mut plain = orig.clone();
        Refactorer::<f64>::new(shape).unwrap().decompose(&mut plain);
        assert_eq!(data, plain);
    }

    /// Decompose a field and return `(original, refactored classes)`.
    fn classes_of(shape: Shape) -> (NdArray<f64>, Vec<Vec<f64>>) {
        let orig = field(shape);
        let mut d = orig.clone();
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        r.decompose(&mut d);
        let hier = r.hierarchy().clone();
        let mut classes = Vec::new();
        for k in 0..=hier.nlevels() {
            let mut buf = Vec::new();
            for_each_class_offset(&hier, k, |off| buf.push(d.as_slice()[off]));
            classes.push(buf);
        }
        (orig, classes)
    }

    #[test]
    fn streaming_recompose_inverts_decomposition() {
        let shape = Shape::d2(17, 33);
        let (orig, mut classes) = classes_of(shape);
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let (out, stats) = recompose_streaming(&mut r, &mut classes).unwrap();
        let err = mg_grid::real::max_abs_diff(out.as_slice(), orig.as_slice());
        assert!(err < 1e-11, "round trip error {err}");
        assert_eq!(stats.classes_written, r.hierarchy().nlevels() + 1);
        assert!(stats.wall >= stats.compute);
    }

    #[test]
    fn streaming_recompose_matches_batch_recompose_bitwise() {
        let shape = Shape::d3(9, 5, 9);
        let (_, classes) = classes_of(shape);
        for keep in [1, 2, classes.len()] {
            // Zero-filled trailing classes model a prefix fetch.
            let mut prefix: Vec<Vec<f64>> = classes
                .iter()
                .enumerate()
                .map(|(k, c)| {
                    if k < keep {
                        c.clone()
                    } else {
                        vec![0.0; c.len()]
                    }
                })
                .collect();

            // Batch path: scatter everything, then recompose.
            let mut r = Refactorer::<f64>::new(shape).unwrap();
            let hier = r.hierarchy().clone();
            let mut batch = NdArray::<f64>::zeros(shape);
            for (k, c) in prefix.iter().enumerate() {
                let mut it = c.iter();
                let slice = batch.as_mut_slice();
                for_each_class_offset(&hier, k, |off| slice[off] = *it.next().unwrap());
            }
            r.recompose(&mut batch);

            let mut r2 = Refactorer::<f64>::new(shape).unwrap();
            let (streamed, _) = recompose_streaming(&mut r2, &mut prefix).unwrap();
            assert_eq!(streamed, batch, "keep = {keep}");
        }
    }

    #[test]
    fn source_errors_surface() {
        struct FailingSource;
        impl ClassSource<f64> for FailingSource {
            fn read_class(&mut self, class: usize) -> std::io::Result<Vec<f64>> {
                Err(std::io::Error::other(format!("tier {class} unreachable")))
            }
        }
        let mut r = Refactorer::<f64>::new(Shape::d2(9, 9)).unwrap();
        let err = recompose_streaming(&mut r, &mut FailingSource).unwrap_err();
        assert_eq!(err.to_string(), "tier 0 unreachable");
    }

    #[test]
    fn short_class_buffers_are_rejected() {
        let shape = Shape::d2(9, 9);
        let (_, mut classes) = classes_of(shape);
        classes[1].pop();
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let err = recompose_streaming(&mut r, &mut classes).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn stats_are_consistent() {
        let shape = Shape::d2(65, 65);
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut data = field(shape);
        let mut sink: Vec<Option<Vec<f64>>> = Vec::new();
        let stats = decompose_streaming(&mut r, &mut data, &mut sink).unwrap();
        assert!(stats.wall >= stats.compute);
        assert!(stats.compute.as_nanos() > 0);
        assert!((0.0..=1.0).contains(&stats.hidden_fraction()));
    }
}
