//! Streaming decomposition: overlap per-level kernels with write-out.
//!
//! Decomposition finalizes coefficient class `C_l` the moment level `l`'s
//! step completes — later steps only touch the coarser `N_{l-1}` nodes. So
//! the end-to-end refactor-then-write job does not have to serialize:
//! while the compute thread decomposes level `l - 1`, an I/O thread writes
//! class `C_l` out. This is the CPU rendering of the paper's Fig. 8 stream
//! schedule (kernels on one CUDA stream, transfers on another) applied to
//! the Fig. 1 in-situ loop, where refactoring throughput only matters
//! insofar as the combined refactor + write pipeline keeps up with the
//! simulation.
//!
//! The pipeline is double-buffered: two class buffers circulate between
//! the compute thread and the single I/O thread, so compute never waits
//! unless the sink falls a full class behind, and memory stays bounded at
//! two classes regardless of grid size.

use crate::refactorer::Refactorer;
use mg_grid::pack::for_each_class_offset;
use mg_grid::{NdArray, Real};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Destination of streamed coefficient classes.
///
/// Classes arrive in completion order — finest (`C_L`) first, the coarsest
/// nodal class `0` last — each exactly once, on a dedicated I/O thread.
pub trait ClassSink<T> {
    /// Persist one class payload. Values follow the canonical class
    /// ordering of [`mg_grid::pack::for_each_class_offset`].
    fn write_class(&mut self, class: usize, values: &[T]) -> std::io::Result<()>;
}

/// Every in-memory `Vec` collector is a sink (classes indexed by id;
/// useful for tests and for staging into other transports).
impl<T: Real> ClassSink<T> for Vec<Option<Vec<T>>> {
    fn write_class(&mut self, class: usize, values: &[T]) -> std::io::Result<()> {
        if self.len() <= class {
            self.resize(class + 1, None);
        }
        self[class] = Some(values.to_vec());
        Ok(())
    }
}

/// Timing breakdown of one streamed decomposition.
#[derive(Copy, Clone, Debug, Default)]
pub struct StreamStats {
    /// Wall-clock of the whole pipeline (compute + exposed I/O).
    pub wall: Duration,
    /// Compute-thread work: `decompose_level` plus class extraction (both
    /// run serially on the calling thread, so both count as compute when
    /// attributing the remainder of `wall` to exposed I/O).
    pub compute: Duration,
    /// Time the I/O thread spent inside the sink.
    pub io: Duration,
    /// Classes handed to the sink (`L + 1`).
    pub classes_written: usize,
}

impl StreamStats {
    /// I/O time not hidden under compute (`wall - compute`): the pipeline's
    /// exposed cost relative to a compute-only decomposition.
    pub fn exposed_io(&self) -> Duration {
        self.wall.saturating_sub(self.compute)
    }

    /// Fraction of I/O time that overlapped with compute (1.0 = fully
    /// hidden, the Fig. 1 goal).
    pub fn hidden_fraction(&self) -> f64 {
        if self.io.is_zero() {
            return 1.0;
        }
        let hidden = self.io.saturating_sub(self.exposed_io());
        hidden.as_secs_f64() / self.io.as_secs_f64()
    }
}

/// Decompose `data` in place while streaming each finished coefficient
/// class to `sink` from a dedicated I/O thread (double-buffered).
///
/// On return, `data` holds exactly the refactored representation a plain
/// [`Refactorer::decompose`] produces (same plan, bitwise identical), and
/// the sink has received classes `L, L-1, ..., 1, 0`. Sink errors abort
/// the write-out (remaining classes are dropped) but the decomposition
/// itself always completes; the first error is returned.
pub fn decompose_streaming<T, S>(
    r: &mut Refactorer<T>,
    data: &mut NdArray<T>,
    sink: &mut S,
) -> std::io::Result<StreamStats>
where
    T: Real,
    S: ClassSink<T> + Send,
{
    let hier = r.hierarchy().clone();
    let nlevels = hier.nlevels();
    let t_wall = Instant::now();
    let mut compute = Duration::ZERO;

    let (work_tx, work_rx) = mpsc::channel::<(usize, Vec<T>)>();
    let (back_tx, back_rx) = mpsc::channel::<Vec<T>>();
    // Two buffers in flight: one being filled, one being written.
    for _ in 0..2 {
        back_tx.send(Vec::new()).expect("receiver alive");
    }

    let (io_time, io_result) = std::thread::scope(|s| {
        let io = s.spawn(move || {
            let mut io_time = Duration::ZERO;
            let mut result = Ok(());
            while let Ok((class, buf)) = work_rx.recv() {
                let t0 = Instant::now();
                result = sink.write_class(class, &buf);
                io_time += t0.elapsed();
                if result.is_err() {
                    // Stop consuming; the compute side sees the closed
                    // channels and finishes the decomposition alone.
                    break;
                }
                let _ = back_tx.send(buf);
            }
            (io_time, result)
        });

        let ship = |class: usize, data: &NdArray<T>, compute: &mut Duration| {
            let Ok(mut buf) = back_rx.recv() else {
                return; // I/O thread bailed; keep decomposing.
            };
            // Extraction is compute-thread work (the recv wait above is
            // backpressure, not compute).
            let t0 = Instant::now();
            buf.clear();
            for_each_class_offset(&hier, class, |off| buf.push(data.as_slice()[off]));
            *compute += t0.elapsed();
            let _ = work_tx.send((class, buf));
        };

        for l in (1..=nlevels).rev() {
            let t0 = Instant::now();
            r.decompose_level(data, l);
            compute += t0.elapsed();
            ship(l, data, &mut compute);
        }
        // The coarsest nodal values are final once every level is done.
        ship(0, data, &mut compute);
        drop(work_tx);
        io.join().expect("I/O thread panicked")
    });
    io_result?;

    Ok(StreamStats {
        wall: t_wall.elapsed(),
        compute,
        io: io_time,
        classes_written: nlevels + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_grid::Shape;
    use mg_kernels::{ExecPlan, Layout};

    fn field(shape: Shape) -> NdArray<f64> {
        NdArray::from_fn(shape, |i| {
            ((i.iter()
                .enumerate()
                .map(|(d, &v)| v * (d + 3))
                .sum::<usize>()
                * 31)
                % 89) as f64
                * 0.043
                - 1.7
        })
    }

    #[test]
    fn streamed_classes_match_plain_decomposition() {
        let shape = Shape::d2(17, 33);
        for plan in [
            ExecPlan::serial(),
            ExecPlan::parallel().with_layout(Layout::tiled()),
        ] {
            let orig = field(shape);

            let mut plain = orig.clone();
            let mut r1 = Refactorer::<f64>::new(shape).unwrap().plan(plan);
            r1.decompose(&mut plain);
            let hier = r1.hierarchy().clone();

            let mut streamed = orig.clone();
            let mut r2 = Refactorer::<f64>::new(shape).unwrap().plan(plan);
            let mut sink: Vec<Option<Vec<f64>>> = Vec::new();
            let stats = decompose_streaming(&mut r2, &mut streamed, &mut sink).unwrap();

            assert_eq!(streamed, plain, "streaming must not perturb results");
            assert_eq!(stats.classes_written, hier.nlevels() + 1);
            assert_eq!(sink.len(), hier.nlevels() + 1);
            for k in 0..=hier.nlevels() {
                let got = sink[k].as_ref().expect("class written");
                let mut expect = Vec::new();
                for_each_class_offset(&hier, k, |off| expect.push(plain.as_slice()[off]));
                assert_eq!(got, &expect, "class {k}");
            }
        }
    }

    #[test]
    fn zero_level_grid_streams_single_class() {
        let shape = Shape::d2(2, 2);
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut data = field(shape);
        let orig = data.clone();
        let mut sink: Vec<Option<Vec<f64>>> = Vec::new();
        let stats = decompose_streaming(&mut r, &mut data, &mut sink).unwrap();
        assert_eq!(stats.classes_written, 1);
        assert_eq!(sink[0].as_ref().unwrap(), orig.as_slice());
    }

    #[test]
    fn sink_errors_surface_but_decomposition_completes() {
        struct FailingSink;
        impl ClassSink<f64> for FailingSink {
            fn write_class(&mut self, _: usize, _: &[f64]) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }
        let shape = Shape::d2(17, 17);
        let orig = field(shape);
        let mut data = orig.clone();
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let err = decompose_streaming(&mut r, &mut data, &mut FailingSink).unwrap_err();
        assert_eq!(err.to_string(), "disk full");
        // The array still holds the full decomposition.
        let mut plain = orig.clone();
        Refactorer::<f64>::new(shape).unwrap().decompose(&mut plain);
        assert_eq!(data, plain);
    }

    #[test]
    fn stats_are_consistent() {
        let shape = Shape::d2(65, 65);
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut data = field(shape);
        let mut sink: Vec<Option<Vec<f64>>> = Vec::new();
        let stats = decompose_streaming(&mut r, &mut data, &mut sink).unwrap();
        assert!(stats.wall >= stats.compute);
        assert!(stats.compute.as_nanos() > 0);
        assert!((0.0..=1.0).contains(&stats.hidden_fraction()));
    }
}
