//! The §V-A visualization workflow: simulation writes refactored data,
//! a visualization job reads a class prefix and renders.
//!
//! Figure 10 of the paper plots, for each number of stored classes, the
//! stacked cost of (refactoring + file write) on the producer side and
//! (file read + recomposition) on the consumer side, with the
//! refactoring/recomposition executed either on CPUs or on GPUs. The
//! point of the figure: only when refactoring is fast (GPU) does writing
//! fewer classes translate into an end-to-end I/O win.

use crate::adios::{class_sizes, IoCost, ParallelIo};
use crate::tiers::StorageTier;

/// Cost breakdown of one workflow leg.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WorkflowCost {
    /// Decomposition (producer) or recomposition (consumer), seconds.
    pub refactor: f64,
    /// File write/read, seconds.
    pub io: f64,
    /// Coefficient classes moved.
    pub classes: usize,
    /// Bytes moved.
    pub bytes: u64,
}

impl WorkflowCost {
    /// Refactoring + I/O, seconds.
    pub fn total(&self) -> f64 {
        self.refactor + self.io
    }
}

/// Configuration of the visualization workflow experiment.
#[derive(Clone, Debug)]
pub struct VizWorkflow {
    /// Total dataset size, bytes (paper: 4 TB).
    pub total_bytes: u64,
    /// Coefficient classes the data refactors into (paper: 10).
    pub nclasses: usize,
    /// Dimensionality (drives the class-size distribution).
    pub ndim: u32,
    /// Writer processes (paper: 4096).
    pub writers: usize,
    /// Reader processes (paper: 512).
    pub readers: usize,
    /// Per-process refactoring throughput, bytes/s (from the GPU or CPU
    /// model).
    pub refactor_bps_per_proc: f64,
    /// Storage tier carrying the shared file.
    pub tier: StorageTier,
}

impl VizWorkflow {
    /// Producer-side cost of storing the first `count` classes.
    ///
    /// Refactoring must always process the *full* data (the decomposition
    /// is global); selecting classes only reduces what is written.
    pub fn write_cost(&self, count: usize) -> WorkflowCost {
        let sizes = class_sizes(self.total_bytes, self.nclasses, self.ndim);
        let io: IoCost =
            ParallelIo::new(self.tier.clone(), self.writers).write_classes(&sizes, count);
        let refactor = self.total_bytes as f64 / (self.refactor_bps_per_proc * self.writers as f64);
        WorkflowCost {
            refactor,
            io: io.seconds,
            classes: io.classes,
            bytes: io.bytes,
        }
    }

    /// Consumer-side cost of reading the first `count` classes and
    /// recomposing an approximation.
    pub fn read_cost(&self, count: usize) -> WorkflowCost {
        let sizes = class_sizes(self.total_bytes, self.nclasses, self.ndim);
        let io: IoCost =
            ParallelIo::new(self.tier.clone(), self.readers).read_classes(&sizes, count);
        // Recomposition runs on the (zero-filled) full grid regardless of
        // how many classes were fetched.
        let refactor = self.total_bytes as f64 / (self.refactor_bps_per_proc * self.readers as f64);
        WorkflowCost {
            refactor,
            io: io.seconds,
            classes: io.classes,
            bytes: io.bytes,
        }
    }

    /// End-to-end (write then read) cost for `count` classes.
    pub fn total_cost(&self, count: usize) -> f64 {
        self.write_cost(count).total() + self.read_cost(count).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workflow(refactor_bps: f64) -> VizWorkflow {
        VizWorkflow {
            total_bytes: 4 << 40,
            nclasses: 10,
            ndim: 3,
            writers: 4096,
            readers: 512,
            refactor_bps_per_proc: refactor_bps,
            tier: StorageTier::parallel_fs(),
        }
    }

    #[test]
    fn gpu_refactoring_makes_class_selection_pay_off() {
        // GPU: ~5 GB/s per process. Writing 3 of 10 classes should cut
        // the end-to-end cost by a large factor (paper: ~66% reduction).
        let wf = workflow(5.0e9);
        let all = wf.total_cost(10);
        let three = wf.total_cost(3);
        let reduction = 1.0 - three / all;
        assert!(
            reduction > 0.5,
            "expected most of the I/O cost to vanish, got {reduction:.2}"
        );
    }

    #[test]
    fn cpu_refactoring_erodes_the_benefit() {
        // Serial CPU: ~50 MB/s per process. Refactoring dominates, so
        // dropping classes barely moves the total.
        let wf = workflow(50.0e6);
        let all = wf.total_cost(10);
        let three = wf.total_cost(3);
        let reduction = 1.0 - three / all;
        assert!(
            reduction < 0.3,
            "CPU refactoring should dominate, got reduction {reduction:.2}"
        );
    }

    #[test]
    fn write_cost_decreases_with_fewer_classes() {
        let wf = workflow(5.0e9);
        let mut last = f64::INFINITY;
        for k in (1..=10).rev() {
            let c = wf.write_cost(k);
            assert!(c.total() < last);
            last = c.total();
        }
    }

    #[test]
    fn readers_below_saturation_read_slower() {
        // With 4096 writers the aggregate is saturated; a small reader
        // job (64 procs x 1.2 GB/s < 240 GB/s aggregate) is
        // client-limited and therefore slower.
        let wf = VizWorkflow {
            readers: 64,
            ..workflow(5.0e9)
        };
        let w = wf.write_cost(10);
        let r = wf.read_cost(10);
        assert!(r.io > w.io, "read {} vs write {}", r.io, w.io);
    }

    #[test]
    fn refactor_cost_independent_of_class_count() {
        let wf = workflow(5.0e9);
        assert_eq!(wf.write_cost(1).refactor, wf.write_cost(10).refactor);
    }
}
