//! Storage-tier models (Fig. 1's multi-tiered-storage systems).

use serde::{Deserialize, Serialize};

/// One storage tier (or network hop) with a latency + bandwidth cost
/// model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StorageTier {
    /// Human-readable tier name.
    pub name: &'static str,
    /// Aggregate bandwidth available to a job, bytes/s.
    pub aggregate_bw: f64,
    /// Per-client (per-process) bandwidth ceiling, bytes/s.
    pub per_client_bw: f64,
    /// Fixed per-operation latency, seconds.
    pub latency: f64,
    /// Capacity, bytes (for placement decisions).
    pub capacity: u64,
}

impl StorageTier {
    /// Node-local NVMe burst buffer (Summit-class: 1.6 TB/node, ~2 GB/s
    /// write per node; aggregate scales with nodes so we quote a large
    /// job share).
    pub fn nvme_burst_buffer() -> Self {
        StorageTier {
            name: "NVMe burst buffer",
            aggregate_bw: 1.4e12,
            per_client_bw: 2.0e9,
            latency: 0.2e-3,
            capacity: 1_600 * (1 << 30),
        }
    }

    /// Center-wide parallel file system (GPFS/Alpine-class). The quoted
    /// aggregate is a realistic single-job share, not the marketing peak.
    pub fn parallel_fs() -> Self {
        StorageTier {
            name: "parallel FS",
            aggregate_bw: 240.0e9,
            per_client_bw: 1.2e9,
            latency: 5.0e-3,
            capacity: 250_000 * (1 << 30),
        }
    }

    /// Archival tape system (HPSS-class).
    pub fn archive() -> Self {
        StorageTier {
            name: "archive",
            aggregate_bw: 10.0e9,
            per_client_bw: 0.4e9,
            latency: 30.0,
            capacity: u64::MAX,
        }
    }

    /// Wide-area network link between facilities.
    pub fn wan() -> Self {
        StorageTier {
            name: "WAN",
            aggregate_bw: 12.5e9, // 100 Gb/s
            per_client_bw: 1.25e9,
            latency: 50.0e-3,
            capacity: u64::MAX,
        }
    }

    /// The standard tier ladder, fastest first — the tiers a served
    /// response is modeled against when `mg-serve` reports how long a
    /// payload would take to move out of each storage/network layer.
    pub fn standard_ladder() -> Vec<StorageTier> {
        vec![
            StorageTier::nvme_burst_buffer(),
            StorageTier::parallel_fs(),
            StorageTier::wan(),
            StorageTier::archive(),
        ]
    }

    /// Effective bandwidth for `clients` parallel processes.
    pub fn effective_bw(&self, clients: usize) -> f64 {
        (self.per_client_bw * clients.max(1) as f64).min(self.aggregate_bw)
    }

    /// Time to move `bytes` with `clients` parallel processes.
    pub fn transfer_time(&self, bytes: u64, clients: usize) -> f64 {
        self.latency + bytes as f64 / self.effective_bw(clients)
    }
}

/// Modeled time to move one payload across a tier (one row of the
/// per-response transfer report `mg-serve` attaches to every fetch).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransferCost {
    /// Tier name.
    pub tier: String,
    /// Modeled transfer time, seconds.
    pub seconds: f64,
}

/// Model moving `bytes` through every tier of the standard ladder with
/// `clients` parallel readers, fastest tier first.
pub fn transfer_costs(bytes: u64, clients: usize) -> Vec<TransferCost> {
    StorageTier::standard_ladder()
        .into_iter()
        .map(|t| TransferCost {
            seconds: t.transfer_time(bytes, clients),
            tier: t.name.to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_report_covers_the_ladder_in_speed_order() {
        let costs = transfer_costs(1 << 30, 1);
        assert_eq!(costs.len(), StorageTier::standard_ladder().len());
        assert_eq!(costs[0].tier, "NVMe burst buffer");
        for w in costs.windows(2) {
            assert!(w[0].seconds < w[1].seconds, "{costs:?}");
        }
    }

    #[test]
    fn tiers_are_ordered_by_speed() {
        let bb = StorageTier::nvme_burst_buffer();
        let pfs = StorageTier::parallel_fs();
        let ar = StorageTier::archive();
        let gb = 1u64 << 30;
        let t_bb = bb.transfer_time(100 * gb, 1000);
        let t_pfs = pfs.transfer_time(100 * gb, 1000);
        let t_ar = ar.transfer_time(100 * gb, 1000);
        assert!(t_bb < t_pfs && t_pfs < t_ar);
    }

    #[test]
    fn bandwidth_saturates_at_aggregate() {
        let pfs = StorageTier::parallel_fs();
        assert_eq!(pfs.effective_bw(1_000_000), pfs.aggregate_bw);
        assert_eq!(pfs.effective_bw(1), pfs.per_client_bw);
    }

    #[test]
    fn more_clients_never_slower() {
        let pfs = StorageTier::parallel_fs();
        let mut last = f64::INFINITY;
        for c in [1usize, 8, 64, 512, 4096] {
            let t = pfs.transfer_time(1 << 40, c);
            assert!(t <= last);
            last = t;
        }
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let ar = StorageTier::archive();
        let t = ar.transfer_time(1024, 1);
        assert!((t - ar.latency).abs() / ar.latency < 0.01);
    }
}
