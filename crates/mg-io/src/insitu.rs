//! In-situ producer loop: Figure 1 as an executable timeline.
//!
//! A simulation emits one snapshot per output step; each snapshot is
//! refactored (at a modeled rate), its classes placed across storage
//! tiers, and a chosen prefix written out. The driver accumulates a
//! per-step timeline and reports whether I/O keeps up with the simulation
//! — the paper's core pitch is exactly that refactoring must be fast
//! enough for this loop to stay compute-bound.

use crate::placement::{plan_placement, Placement, PlacementError};
use crate::tiers::StorageTier;

/// Configuration of the in-situ output loop.
#[derive(Clone, Debug)]
pub struct InSituLoop {
    /// Bytes per snapshot.
    pub snapshot_bytes: u64,
    /// Per-class sizes (most important first); must sum to
    /// `snapshot_bytes`.
    pub class_bytes: Vec<u64>,
    /// Classes written out each step.
    pub keep_classes: usize,
    /// Simulation compute time per output step, seconds.
    pub compute_seconds: f64,
    /// Aggregate refactoring throughput of the job, bytes/s.
    pub refactor_bps: f64,
    /// Writer processes.
    pub writers: usize,
    /// Storage tiers, fastest first (capacities are consumed as steps
    /// accumulate).
    pub tiers: Vec<StorageTier>,
}

/// Outcome of one output step.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct StepCost {
    pub step: usize,
    /// Refactoring time, seconds.
    pub refactor: f64,
    /// Write time, seconds.
    pub write: f64,
    /// Whether output hid entirely under the next compute phase
    /// (asynchronous staging assumed).
    pub hidden: bool,
}

/// The accumulated timeline.
#[derive(Clone, Debug)]
pub struct Timeline {
    pub steps: Vec<StepCost>,
    /// Final class placement of the last step (all steps share a layout).
    pub placement: Placement,
}

impl Timeline {
    /// Total wall-clock including exposed (non-hidden) output time.
    pub fn total_seconds(&self, compute_seconds: f64) -> f64 {
        self.steps
            .iter()
            .map(|s| {
                compute_seconds
                    + if s.hidden {
                        0.0
                    } else {
                        s.refactor + s.write - compute_seconds
                    }
            })
            .sum()
    }

    /// Fraction of steps whose output was fully hidden under compute.
    pub fn hidden_fraction(&self) -> f64 {
        if self.steps.is_empty() {
            return 1.0;
        }
        self.steps.iter().filter(|s| s.hidden).count() as f64 / self.steps.len() as f64
    }
}

impl InSituLoop {
    /// Run `nsteps` output steps.
    pub fn run(&self, nsteps: usize) -> Result<Timeline, PlacementError> {
        assert_eq!(
            self.class_bytes.iter().sum::<u64>(),
            self.snapshot_bytes,
            "class sizes must sum to the snapshot size"
        );
        // Each step consumes tier capacity for the kept prefix; plan once
        // with per-step sizes scaled by step count to validate capacity,
        // then price a single step.
        let kept: Vec<u64> =
            self.class_bytes[..self.keep_classes.min(self.class_bytes.len())].to_vec();
        let total_per_class: Vec<u64> = kept.iter().map(|b| b * nsteps as u64).collect();
        let placement = plan_placement(&self.tiers, &total_per_class, self.writers)?;

        let refactor = self.snapshot_bytes as f64 / self.refactor_bps;
        // Write cost of one step's prefix using the planned tier of each
        // class (per-step bytes).
        let mut write = 0.0f64;
        for (k, &bytes) in kept.iter().enumerate() {
            let tier = &self.tiers[placement.tier_of(k)];
            write = write.max(tier.latency + bytes as f64 / tier.effective_bw(self.writers));
        }

        let steps = (0..nsteps)
            .map(|step| StepCost {
                step,
                refactor,
                write,
                hidden: refactor + write <= self.compute_seconds,
            })
            .collect();
        Ok(Timeline { steps, placement })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adios::class_sizes;

    fn base_loop(refactor_bps: f64) -> InSituLoop {
        let snapshot = 64u64 << 30; // 64 GiB per step
        InSituLoop {
            snapshot_bytes: snapshot,
            class_bytes: class_sizes(snapshot, 10, 3),
            keep_classes: 3,
            compute_seconds: 30.0,
            refactor_bps,
            writers: 1024,
            tiers: vec![StorageTier::nvme_burst_buffer(), StorageTier::parallel_fs()],
        }
    }

    #[test]
    fn gpu_rate_refactoring_hides_output() {
        // Aggregate GPU refactoring at ~5 GB/s x 1024 ranks is far above
        // what 64 GiB / 30 s needs.
        let tl = base_loop(5.0e12).run(100).unwrap();
        assert_eq!(tl.hidden_fraction(), 1.0, "{:?}", tl.steps[0]);
        assert!((tl.total_seconds(30.0) - 3000.0).abs() < 1e-6);
    }

    #[test]
    fn cpu_rate_refactoring_exposes_output() {
        // A small CPU job (e.g. 20 ranks at ~50 MB/s = 1 GB/s aggregate)
        // needs ~69 s to refactor a 64 GiB snapshot — more than the 30 s
        // compute phase: the loop becomes output-bound.
        let tl = base_loop(1.0e9).run(10).unwrap();
        assert_eq!(tl.hidden_fraction(), 0.0);
        assert!(tl.total_seconds(30.0) > 10.0 * 30.0);
    }

    #[test]
    fn capacity_fills_up_over_long_runs() {
        // Keep every class: the burst buffer alone cannot hold a long
        // campaign; the planner spills to the PFS rather than failing.
        let mut lp = base_loop(5.0e12);
        lp.keep_classes = 10;
        let tl = lp.run(500).unwrap();
        let bytes = tl.placement.bytes_per_tier();
        assert!(bytes[1] > 0, "long runs must spill to the PFS: {bytes:?}");
    }

    #[test]
    fn infeasible_capacity_is_an_error() {
        // Keeping every class, a 1 GiB-capacity tier cannot hold a
        // 64 GiB-per-step campaign.
        let mut lp = base_loop(5.0e12);
        lp.keep_classes = 10;
        lp.tiers = vec![StorageTier {
            capacity: 1 << 30,
            ..StorageTier::nvme_burst_buffer()
        }];
        assert!(lp.run(1000).is_err());
    }

    #[test]
    fn fewer_classes_shrink_write_time() {
        let mut lp = base_loop(5.0e12);
        lp.keep_classes = 10;
        let all = lp.run(5).unwrap().steps[0].write;
        lp.keep_classes = 2;
        let few = lp.run(5).unwrap().steps[0].write;
        assert!(few < all);
    }
}
