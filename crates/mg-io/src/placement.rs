//! Coefficient-class placement across storage tiers (paper Fig. 1).
//!
//! The paper's motivating scenario: refactored data is spread over a
//! multi-tiered storage system "based on available capacity and
//! bandwidth", so that the most important classes sit on the fastest
//! media. Given tiers (with capacity and effective bandwidth) and
//! classes (with sizes, most-important-first), [`plan_placement`]
//! assigns classes to tiers to minimize the expected cost of a prefix
//! read, and [`Placement::read_cost`] prices any consumer request.
//!
//! The optimal structure is simple and provable: because any consumer
//! reads a *prefix* of classes, and class importance decreases with
//! index, the cost-minimizing assignment subject to capacities is
//! greedy — place classes in order onto the fastest tier that still has
//! room. A proof sketch lives with `tests::greedy_is_optimal_small`,
//! which cross-checks against brute force.

use crate::tiers::StorageTier;

/// Where one class landed.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassPlacement {
    /// Class index (0 = most important).
    pub class: usize,
    /// Index into the tier list.
    pub tier: usize,
    /// Class payload size.
    pub bytes: u64,
}

/// A complete placement of classes onto tiers.
#[derive(Clone, Debug)]
pub struct Placement {
    tiers: Vec<StorageTier>,
    assignments: Vec<ClassPlacement>,
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// Total capacity cannot hold all classes; contains the first class
    /// that does not fit.
    InsufficientCapacity {
        /// The first class that did not fit.
        class: usize,
    },
    /// No tiers were supplied.
    NoTiers,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::InsufficientCapacity { class } => {
                write!(f, "class {class} does not fit in any tier")
            }
            PlacementError::NoTiers => write!(f, "no storage tiers supplied"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Greedily place classes (most-important-first) onto the fastest tiers.
///
/// Tier speed ordering is computed internally via [`speed_order`];
/// `class_bytes[k]` is the size of class `k`.
pub fn plan_placement(
    tiers: &[StorageTier],
    class_bytes: &[u64],
    readers: usize,
) -> Result<Placement, PlacementError> {
    if tiers.is_empty() {
        return Err(PlacementError::NoTiers);
    }
    let order = speed_order(tiers, readers);
    let mut remaining: Vec<u64> = tiers.iter().map(|t| t.capacity).collect();
    let mut assignments = Vec::with_capacity(class_bytes.len());
    for (k, &bytes) in class_bytes.iter().enumerate() {
        let slot = order
            .iter()
            .copied()
            .find(|&t| remaining[t] >= bytes)
            .ok_or(PlacementError::InsufficientCapacity { class: k })?;
        remaining[slot] -= bytes;
        assignments.push(ClassPlacement {
            class: k,
            tier: slot,
            bytes,
        });
    }
    Ok(Placement {
        tiers: tiers.to_vec(),
        assignments,
    })
}

/// Tier indices sorted by effective bandwidth (fastest first) for the
/// given reader parallelism; ties broken by lower latency.
pub fn speed_order(tiers: &[StorageTier], readers: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..tiers.len()).collect();
    idx.sort_by(|&a, &b| {
        let ba = tiers[a].effective_bw(readers);
        let bb = tiers[b].effective_bw(readers);
        bb.partial_cmp(&ba)
            .unwrap()
            .then(tiers[a].latency.partial_cmp(&tiers[b].latency).unwrap())
    });
    idx
}

impl Placement {
    /// Per-class assignments, in class order.
    pub fn assignments(&self) -> &[ClassPlacement] {
        &self.assignments
    }

    /// Which tier holds class `k`.
    pub fn tier_of(&self, k: usize) -> usize {
        self.assignments[k].tier
    }

    /// Cost (seconds) for `readers` processes to fetch classes
    /// `0..count`: per-tier transfers can proceed concurrently, so the
    /// cost is the max over tiers of (latency + bytes/bandwidth).
    pub fn read_cost(&self, count: usize, readers: usize) -> f64 {
        let mut per_tier = vec![0u64; self.tiers.len()];
        let mut touched = vec![false; self.tiers.len()];
        for a in self.assignments.iter().take(count) {
            per_tier[a.tier] += a.bytes;
            touched[a.tier] = true;
        }
        self.tiers
            .iter()
            .enumerate()
            .filter(|(t, _)| touched[*t])
            .map(|(t, tier)| tier.latency + per_tier[t] as f64 / tier.effective_bw(readers))
            .fold(0.0, f64::max)
    }

    /// Bytes stored on each tier.
    pub fn bytes_per_tier(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.tiers.len()];
        for a in &self.assignments {
            out[a.tier] += a.bytes;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adios::class_sizes;

    fn tier(name: &'static str, bw: f64, latency: f64, cap: u64) -> StorageTier {
        StorageTier {
            name,
            aggregate_bw: bw,
            per_client_bw: bw,
            latency,
            capacity: cap,
        }
    }

    #[test]
    fn greedy_fills_fast_tiers_first() {
        let tiers = vec![
            tier("fast", 100.0e9, 1e-4, 100),
            tier("slow", 1.0e9, 1e-2, u64::MAX),
        ];
        let classes = vec![40u64, 50, 60, 1000];
        let p = plan_placement(&tiers, &classes, 1).unwrap();
        assert_eq!(p.tier_of(0), 0);
        assert_eq!(p.tier_of(1), 0);
        assert_eq!(p.tier_of(2), 1); // 60 no longer fits in fast (10 left)
        assert_eq!(p.tier_of(3), 1);
        assert_eq!(p.bytes_per_tier(), vec![90, 1060]);
    }

    #[test]
    fn capacity_exhaustion_is_reported() {
        let tiers = vec![tier("tiny", 1.0e9, 1e-3, 10)];
        let err = plan_placement(&tiers, &[5, 6], 1).unwrap_err();
        assert_eq!(err, PlacementError::InsufficientCapacity { class: 1 });
    }

    #[test]
    fn no_tiers_is_an_error() {
        assert_eq!(
            plan_placement(&[], &[1], 1).unwrap_err(),
            PlacementError::NoTiers
        );
    }

    #[test]
    fn prefix_reads_get_cheaper_with_fewer_classes() {
        let tiers = vec![
            StorageTier::nvme_burst_buffer(),
            StorageTier::parallel_fs(),
            StorageTier::archive(),
        ];
        // A 1 TB variable in 10 classes, but a burst buffer that only
        // holds the first few.
        let mut bb = tiers.clone();
        bb[0].capacity = 2 << 30;
        let classes = class_sizes(1 << 40, 10, 3);
        let p = plan_placement(&bb, &classes, 512).unwrap();
        let mut last = f64::INFINITY;
        for count in (1..=10).rev() {
            let c = p.read_cost(count, 512);
            assert!(c <= last + 1e-12, "count {count}");
            last = c;
        }
        // Small prefixes never touch the slow tiers.
        assert!(p.read_cost(2, 512) < 0.1);
    }

    #[test]
    fn speed_order_respects_parallelism() {
        // A tier with huge per-client bw but low aggregate loses to a
        // parallel tier once many readers pile on.
        let a = tier("serial-fast", 10.0e9, 1e-4, u64::MAX); // aggregate == per-client
        let mut b = StorageTier::parallel_fs();
        b.capacity = u64::MAX;
        let tiers = vec![a, b];
        let one = speed_order(&tiers, 1);
        let many = speed_order(&tiers, 4096);
        assert_eq!(one[0], 0);
        assert_eq!(many[0], 1);
    }

    #[test]
    fn greedy_is_optimal_small() {
        // Brute-force all assignments of 4 classes onto 3 tiers and check
        // greedy's total prefix-read objective (sum over prefix lengths)
        // is minimal among capacity-feasible assignments.
        let tiers = vec![
            tier("t0", 50.0e9, 1e-4, 120),
            tier("t1", 5.0e9, 1e-3, 300),
            tier("t2", 0.5e9, 1e-2, u64::MAX),
        ];
        let classes = vec![60u64, 70, 120, 200];
        let readers = 8;
        let objective = |assign: &[usize]| -> Option<f64> {
            let mut rem: Vec<i128> = tiers.iter().map(|t| t.capacity as i128).collect();
            for (k, &t) in assign.iter().enumerate() {
                rem[t] -= classes[k] as i128;
                if rem[t] < 0 {
                    return None;
                }
            }
            let p = Placement {
                tiers: tiers.clone(),
                assignments: assign
                    .iter()
                    .enumerate()
                    .map(|(k, &t)| ClassPlacement {
                        class: k,
                        tier: t,
                        bytes: classes[k],
                    })
                    .collect(),
            };
            Some((1..=classes.len()).map(|c| p.read_cost(c, readers)).sum())
        };

        let greedy = plan_placement(&tiers, &classes, readers).unwrap();
        let greedy_assign: Vec<usize> = (0..classes.len()).map(|k| greedy.tier_of(k)).collect();
        let greedy_obj = objective(&greedy_assign).unwrap();

        let mut best = f64::INFINITY;
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    for d in 0..3 {
                        if let Some(o) = objective(&[a, b, c, d]) {
                            best = best.min(o);
                        }
                    }
                }
            }
        }
        assert!(
            greedy_obj <= best * 1.0 + 1e-9,
            "greedy {greedy_obj} vs brute force {best}"
        );
    }
}
