//! Multi-tier storage / network simulator with an ADIOS-like API.
//!
//! Models the I/O side of the paper's Figure 1 and the §V-A visualization
//! showcase: refactored data is written as a sequence of coefficient
//! classes, and producers/consumers choose how many classes to move
//! through each tier. Costs follow a latency + bandwidth model with
//! aggregate-bandwidth sharing across parallel writers/readers.
//!
//! [`stream`] is the *real* I/O end of that story: a [`StreamSink`] hooks
//! `mg_core::decompose_streaming`'s I/O thread to a file (or any `Write`),
//! so refactoring overlaps write-out instead of serializing with it.

pub mod adios;
pub mod insitu;
pub mod placement;
pub mod stream;
pub mod tiers;
pub mod workflow;

pub use adios::{IoCost, ParallelIo};
pub use insitu::{InSituLoop, Timeline};
pub use placement::{plan_placement, Placement};
pub use stream::{read_stream, StreamSink, STREAM_MAGIC};
pub use tiers::{transfer_costs, StorageTier, TransferCost};
pub use workflow::{VizWorkflow, WorkflowCost};
