//! Multi-tier storage / network simulator with an ADIOS-like API.
//!
//! Models the I/O side of the paper's Figure 1 and the §V-A visualization
//! showcase: refactored data is written as a sequence of coefficient
//! classes, and producers/consumers choose how many classes to move
//! through each tier. Costs follow a latency + bandwidth model with
//! aggregate-bandwidth sharing across parallel writers/readers.

pub mod adios;
pub mod insitu;
pub mod placement;
pub mod tiers;
pub mod workflow;

pub use adios::{IoCost, ParallelIo};
pub use insitu::{InSituLoop, Timeline};
pub use placement::{plan_placement, Placement};
pub use tiers::StorageTier;
pub use workflow::{VizWorkflow, WorkflowCost};
