//! ADIOS-like parallel I/O of refactored (class-structured) data.
//!
//! The real workflow uses the ADIOS library (paper citation \[15\]) to write
//! one variable as a set of coefficient classes so that readers can fetch
//! any prefix. [`ParallelIo`] reproduces the cost structure: per-class
//! metadata latency plus banded data transfer on the chosen tier.

use crate::tiers::StorageTier;

/// Cost of one parallel write or read.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct IoCost {
    /// Modeled wall-clock, seconds.
    pub seconds: f64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Coefficient classes involved.
    pub classes: usize,
}

impl IoCost {
    /// Achieved bytes/second.
    pub fn throughput(&self) -> f64 {
        self.bytes as f64 / self.seconds
    }
}

/// A parallel I/O session against one tier.
#[derive(Clone, Debug)]
pub struct ParallelIo {
    tier: StorageTier,
    processes: usize,
}

impl ParallelIo {
    /// Session with `processes` parallel clients on `tier`.
    pub fn new(tier: StorageTier, processes: usize) -> Self {
        assert!(processes >= 1);
        ParallelIo { tier, processes }
    }

    /// The tier this session targets.
    pub fn tier(&self) -> &StorageTier {
        &self.tier
    }

    /// Parallel client count.
    pub fn processes(&self) -> usize {
        self.processes
    }

    /// Write the first `count` classes with the given per-class byte
    /// sizes (class 0 first — the ordering the wire format guarantees).
    pub fn write_classes(&self, class_bytes: &[u64], count: usize) -> IoCost {
        let count = count.min(class_bytes.len());
        let bytes: u64 = class_bytes[..count].iter().sum();
        // One metadata round-trip per class (ADIOS variable block), data
        // banded across all processes.
        let seconds = count as f64 * self.tier.latency
            + bytes as f64 / self.tier.effective_bw(self.processes);
        IoCost {
            seconds,
            bytes,
            classes: count,
        }
    }

    /// Read the first `count` classes.
    pub fn read_classes(&self, class_bytes: &[u64], count: usize) -> IoCost {
        // Same model; reads of a prefix seek once per class too.
        self.write_classes(class_bytes, count)
    }
}

/// Split a dataset of `total_bytes` into per-class sizes following the
/// multigrid class-growth pattern for `nclasses` classes in `ndim`
/// dimensions: class `l+1` is ~`2^ndim` times class `l` (so the finest
/// class holds most of the bytes, as in Fig. 1).
pub fn class_sizes(total_bytes: u64, nclasses: usize, ndim: u32) -> Vec<u64> {
    assert!(nclasses >= 1);
    let growth = (1u64 << ndim) as f64;
    let mut weights: Vec<f64> = (0..nclasses).map(|l| growth.powi(l as i32)).collect();
    let sum: f64 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w /= sum;
    }
    let mut out: Vec<u64> = weights
        .iter()
        .map(|w| (w * total_bytes as f64) as u64)
        .collect();
    // Fix rounding so the sizes sum exactly.
    let diff = total_bytes as i64 - out.iter().sum::<u64>() as i64;
    let last = out.len() - 1;
    out[last] = (out[last] as i64 + diff) as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_sizes_sum_and_grow() {
        let sizes = class_sizes(4 << 40, 10, 3);
        assert_eq!(sizes.iter().sum::<u64>(), 4 << 40);
        for w in sizes.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Finest class dominates in 3-D: ~7/8 of the data.
        assert!(sizes[9] as f64 / (4u64 << 40) as f64 > 0.8);
    }

    #[test]
    fn fewer_classes_cost_less() {
        let io = ParallelIo::new(StorageTier::parallel_fs(), 4096);
        let sizes = class_sizes(4 << 40, 10, 3);
        let mut last = f64::INFINITY;
        for k in (1..=10).rev() {
            let c = io.write_classes(&sizes, k);
            assert!(c.seconds < last, "classes {k}");
            last = c.seconds;
        }
    }

    #[test]
    fn three_of_ten_classes_is_a_small_fraction() {
        // The showcase's headline: 3/10 classes ≈ few % of the bytes in
        // 3-D, hence the ~66% I/O cost reduction with read+write.
        let sizes = class_sizes(4 << 40, 10, 3);
        let three: u64 = sizes[..3].iter().sum();
        assert!((three as f64 / (4u64 << 40) as f64) < 0.01);
    }

    #[test]
    fn throughput_capped_by_aggregate() {
        let io = ParallelIo::new(StorageTier::parallel_fs(), 100_000);
        let sizes = class_sizes(1 << 40, 10, 3);
        let c = io.write_classes(&sizes, 10);
        assert!(c.throughput() <= io.tier().aggregate_bw * 1.001);
    }

    #[test]
    fn read_equals_write_cost_in_this_model() {
        let io = ParallelIo::new(StorageTier::parallel_fs(), 512);
        let sizes = class_sizes(1 << 38, 10, 3);
        assert_eq!(io.read_classes(&sizes, 4), io.write_classes(&sizes, 4));
    }
}
