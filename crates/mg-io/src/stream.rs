//! The streamed-payload wire format: real I/O for the streaming pipeline.
//!
//! [`StreamSink`] is the in-situ end of `mg_core::decompose_streaming`: it
//! implements [`ClassSink`] over any `Write`, so the I/O thread appends
//! each coefficient class to a file (or socket) the moment the class is
//! final — classes land in completion order, finest first.
//!
//! Layout (all little-endian):
//!
//! ```text
//! header:  magic u32 ("MGST") | version u16 | precision u8 | ndim u8
//!          | dims u64 × ndim | nclasses u32
//! record:  class u32 | count u64 | count values (f32 or f64)
//! ```
//!
//! The header mirrors `mg-refactor`'s batch wire format but with its own
//! magic, so readers can sniff which format a payload uses; records are
//! self-describing and may appear in any order. [`read_stream`]
//! reassembles a complete payload into coarsest-first class buffers.

use mg_core::ClassSink;
use mg_grid::{Hierarchy, Real, Shape};
use std::io::Write;

/// Magic number of the streamed format (`"MGST"` read as LE bytes).
pub const STREAM_MAGIC: u32 = 0x5453_474D;

/// Format version written by [`StreamSink`].
pub const STREAM_VERSION: u16 = 1;

/// Errors from [`read_stream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamDecodeError {
    /// Not a streamed payload (magic mismatch).
    BadMagic(u32),
    /// Unsupported version.
    BadVersion(u16),
    /// Element width does not match the requested precision.
    BadPrecision(u8),
    /// Malformed shape / hierarchy.
    BadShape(String),
    /// Truncated payload.
    Truncated,
    /// A class record disagrees with the hierarchy.
    BadClass(String),
    /// A class is missing from the payload.
    MissingClass(usize),
}

impl std::fmt::Display for StreamDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamDecodeError::BadMagic(m) => write!(f, "not a streamed payload (magic {m:#x})"),
            StreamDecodeError::BadVersion(v) => write!(f, "unsupported stream version {v}"),
            StreamDecodeError::BadPrecision(p) => write!(f, "payload precision {p} bytes"),
            StreamDecodeError::BadShape(s) => write!(f, "bad shape: {s}"),
            StreamDecodeError::Truncated => write!(f, "truncated streamed payload"),
            StreamDecodeError::BadClass(s) => write!(f, "bad class record: {s}"),
            StreamDecodeError::MissingClass(k) => write!(f, "class {k} missing from stream"),
        }
    }
}

impl std::error::Error for StreamDecodeError {}

/// [`ClassSink`] that appends stream records to a `Write` destination.
pub struct StreamSink<W: Write> {
    w: W,
}

impl<W: Write> StreamSink<W> {
    /// Write the stream header for `hier` / element width
    /// `precision_bytes` (4 or 8) and return the sink.
    pub fn new(mut w: W, hier: &Hierarchy, precision_bytes: usize) -> std::io::Result<Self> {
        assert!(
            precision_bytes == 4 || precision_bytes == 8,
            "precision must be f32 or f64"
        );
        let shape = hier.finest();
        w.write_all(&STREAM_MAGIC.to_le_bytes())?;
        w.write_all(&STREAM_VERSION.to_le_bytes())?;
        w.write_all(&[precision_bytes as u8, shape.ndim() as u8])?;
        for &d in shape.as_slice() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        w.write_all(&((hier.nlevels() + 1) as u32).to_le_bytes())?;
        Ok(StreamSink { w })
    }

    /// Flush and hand back the destination.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<T: Real, W: Write> ClassSink<T> for StreamSink<W> {
    fn write_class(&mut self, class: usize, values: &[T]) -> std::io::Result<()> {
        self.w.write_all(&(class as u32).to_le_bytes())?;
        self.w.write_all(&(values.len() as u64).to_le_bytes())?;
        // Serialize in slabs so the hot loop appends to a local buffer
        // instead of making one BufWriter call per value.
        const SLAB: usize = 16 * 1024;
        let mut buf = Vec::with_capacity(SLAB.min(values.len()) * T::BYTES);
        for chunk in values.chunks(SLAB.max(1)) {
            buf.clear();
            if T::BYTES == 4 {
                for v in chunk {
                    buf.extend_from_slice(&(v.to_f64() as f32).to_le_bytes());
                }
            } else {
                for v in chunk {
                    buf.extend_from_slice(&v.to_f64().to_le_bytes());
                }
            }
            self.w.write_all(&buf)?;
        }
        Ok(())
    }
}

fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], StreamDecodeError> {
    if bytes.len() < n {
        return Err(StreamDecodeError::Truncated);
    }
    let (head, tail) = bytes.split_at(n);
    *bytes = tail;
    Ok(head)
}

/// Decode a complete streamed payload into `(hierarchy, classes)` with
/// classes ordered coarsest-first (index = class id), validating every
/// record against the hierarchy.
pub fn read_stream<T: Real>(
    mut bytes: &[u8],
) -> Result<(Hierarchy, Vec<Vec<T>>), StreamDecodeError> {
    let b = &mut bytes;
    let magic = u32::from_le_bytes(take(b, 4)?.try_into().unwrap());
    if magic != STREAM_MAGIC {
        return Err(StreamDecodeError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(take(b, 2)?.try_into().unwrap());
    if version != STREAM_VERSION {
        return Err(StreamDecodeError::BadVersion(version));
    }
    let head = take(b, 2)?;
    let (precision, ndim) = (head[0], head[1] as usize);
    if precision as usize != T::BYTES {
        return Err(StreamDecodeError::BadPrecision(precision));
    }
    if ndim == 0 || ndim > mg_grid::MAX_DIMS {
        return Err(StreamDecodeError::BadShape(format!("ndim = {ndim}")));
    }
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        let v = u64::from_le_bytes(take(b, 8)?.try_into().unwrap());
        if v == 0 {
            return Err(StreamDecodeError::BadShape("zero extent".into()));
        }
        dims.push(v as usize);
    }
    let hier = Hierarchy::new(Shape::new(&dims))
        .map_err(|e| StreamDecodeError::BadShape(e.to_string()))?;
    let nclasses = u32::from_le_bytes(take(b, 4)?.try_into().unwrap()) as usize;
    if nclasses != hier.nlevels() + 1 {
        return Err(StreamDecodeError::BadShape(format!(
            "{nclasses} classes for {} levels",
            hier.nlevels()
        )));
    }

    let mut classes: Vec<Option<Vec<T>>> = vec![None; nclasses];
    while !b.is_empty() {
        let class = u32::from_le_bytes(take(b, 4)?.try_into().unwrap()) as usize;
        let count = u64::from_le_bytes(take(b, 8)?.try_into().unwrap()) as usize;
        if class >= nclasses {
            return Err(StreamDecodeError::BadClass(format!("id {class}")));
        }
        let expect = if class == 0 {
            hier.level_len(0)
        } else {
            hier.class_len(class)
        };
        if count != expect {
            return Err(StreamDecodeError::BadClass(format!(
                "class {class}: {count} values, expected {expect}"
            )));
        }
        if classes[class].is_some() {
            return Err(StreamDecodeError::BadClass(format!("duplicate {class}")));
        }
        let raw = take(b, count * T::BYTES)?;
        let vals: Vec<T> = if T::BYTES == 4 {
            raw.chunks_exact(4)
                .map(|c| T::from_f64(f32::from_le_bytes(c.try_into().unwrap()) as f64))
                .collect()
        } else {
            raw.chunks_exact(8)
                .map(|c| T::from_f64(f64::from_le_bytes(c.try_into().unwrap())))
                .collect()
        };
        classes[class] = Some(vals);
    }
    let classes: Vec<Vec<T>> = classes
        .into_iter()
        .enumerate()
        .map(|(k, c)| c.ok_or(StreamDecodeError::MissingClass(k)))
        .collect::<Result<_, _>>()?;
    Ok((hier, classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::{decompose_streaming, Refactorer};
    use mg_grid::pack::for_each_class_offset;
    use mg_grid::NdArray;

    fn streamed_payload(shape: Shape) -> (Vec<u8>, NdArray<f64>) {
        let orig = NdArray::from_fn(shape, |i| ((i[0] * 13 + i[1] * 7) % 19) as f64 * 0.11 - 0.9);
        let mut data = orig.clone();
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut sink = StreamSink::new(Vec::new(), r.hierarchy(), 8).unwrap();
        decompose_streaming(&mut r, &mut data, &mut sink).unwrap();
        (sink.finish().unwrap(), data)
    }

    #[test]
    fn round_trips_through_the_stream_format() {
        let shape = Shape::d2(17, 9);
        let (bytes, refactored) = streamed_payload(shape);
        let (hier, classes) = read_stream::<f64>(&bytes).unwrap();
        assert_eq!(hier.finest(), shape);
        assert_eq!(classes.len(), hier.nlevels() + 1);
        for (k, class) in classes.iter().enumerate() {
            let mut expect = Vec::new();
            for_each_class_offset(&hier, k, |off| expect.push(refactored.as_slice()[off]));
            assert_eq!(class, &expect, "class {k}");
        }
    }

    #[test]
    fn sniffing_rejects_foreign_payloads() {
        let (mut bytes, _) = streamed_payload(Shape::d2(9, 9));
        bytes[0] ^= 0x5A;
        assert!(matches!(
            read_stream::<f64>(&bytes),
            Err(StreamDecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn truncation_and_precision_mismatch_detected() {
        let (bytes, _) = streamed_payload(Shape::d2(9, 9));
        assert!(matches!(
            read_stream::<f64>(&bytes[..bytes.len() - 3]),
            Err(StreamDecodeError::Truncated)
        ));
        assert!(matches!(
            read_stream::<f32>(&bytes),
            Err(StreamDecodeError::BadPrecision(8))
        ));
    }

    #[test]
    fn missing_class_detected() {
        // Header advertises L+1 classes; stop after the first record.
        let shape = Shape::d2(9, 9);
        let (bytes, _) = streamed_payload(shape);
        let hier = Hierarchy::new(shape).unwrap();
        // header: 4+2+2 + 8*2 + 4 = 28 bytes; first record is class L.
        let first_record = 4 + 8 + hier.class_len(hier.nlevels()) * 8;
        assert!(matches!(
            read_stream::<f64>(&bytes[..28 + first_record]),
            Err(StreamDecodeError::MissingClass(_))
        ));
    }
}
