//! Level-weighted (s-norm) quantization.
//!
//! The Ainsworth et al. series (the paper's refs [5–7]) controls error in
//! smoothness norms `H^s`: coarse-level coefficients represent low
//! frequencies whose perturbation matters more (s > 0) or less (s < 0)
//! than fine detail. Operationally this means *per-level bin widths*
//! `b_l = b_base * 2^{s (L - l)}`: for `s > 0` the fine classes are
//! quantized more aggressively, which is where most of the bytes live —
//! the standard trick for better ratios when the consumer cares about
//! smooth functionals of the data rather than point values.
//!
//! `s = 0` recovers the uniform quantizer of [`crate::quantize`] (same
//! L∞ guarantee); for `s != 0` the guarantee is on the weighted
//! coefficient norm, and tests verify the expected ratio/error
//! monotonicity empirically.

use crate::quantize::Quantized;
use mg_grid::Real;
use mg_refactor::classes::Refactored;
use mg_refactor::error::LINF_INDICATOR_KAPPA;

/// Per-level quantization of a refactored representation.
#[derive(Clone, Debug, PartialEq)]
pub struct SnormQuantized {
    /// Signed indices per class.
    pub classes: Vec<Vec<i64>>,
    /// Bin width per class.
    pub bins: Vec<f64>,
}

/// Per-class bin widths for target `tau` and smoothness parameter `s`.
///
/// Class `L` (finest) gets `b_L = base`; class `l` gets
/// `base * 2^{-s (L - l)}` — so positive `s` narrows the coarse bins
/// (protecting low frequencies) and widens nothing: the *sum* of the
/// κ-weighted half-bins still equals `tau`, preserving a worst-case
/// bound in the weighted norm.
pub fn snorm_bins(tau: f64, nclasses: usize, s: f64) -> Vec<f64> {
    assert!(tau > 0.0, "error bound must be positive");
    assert!(nclasses >= 1);
    let top = (nclasses - 1) as f64;
    // weights w_l = 2^{-s (L - l)}; bins proportional to w_l, normalized
    // so κ/2 * Σ b_l = tau.
    let weights: Vec<f64> = (0..nclasses)
        .map(|l| (2f64).powf(-s * (top - l as f64)))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let scale = 2.0 * tau / (LINF_INDICATOR_KAPPA * wsum);
    weights.iter().map(|w| w * scale).collect()
}

/// Quantize with per-level bins.
pub fn quantize_snorm<T: Real>(refac: &Refactored<T>, tau: f64, s: f64) -> SnormQuantized {
    let bins = snorm_bins(tau, refac.num_classes(), s);
    let classes = refac
        .classes()
        .iter()
        .zip(&bins)
        .map(|(c, &bin)| {
            c.iter()
                .map(|&v| (v.to_f64() / bin).round() as i64)
                .collect()
        })
        .collect();
    SnormQuantized { classes, bins }
}

/// Reconstruct the (perturbed) refactored representation.
pub fn dequantize_snorm<T: Real>(q: &SnormQuantized, hier: mg_grid::Hierarchy) -> Refactored<T> {
    let classes = q
        .classes
        .iter()
        .zip(&q.bins)
        .map(|(c, &bin)| c.iter().map(|&i| T::from_f64(i as f64 * bin)).collect())
        .collect();
    Refactored::from_classes(hier, classes)
}

impl SnormQuantized {
    /// View as a uniform [`Quantized`] when all bins are equal
    /// (`s == 0`); panics otherwise.
    pub fn into_uniform(self) -> Quantized {
        let bin = self.bins[0];
        assert!(
            self.bins
                .iter()
                .all(|&b| (b - bin).abs() < 1e-15 * bin.abs()),
            "bins differ: not a uniform quantization"
        );
        Quantized {
            classes: self.classes,
            bin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize;
    use mg_core::Refactorer;
    use mg_grid::{NdArray, Shape};
    use mg_refactor::progressive::reconstruct_prefix;

    fn refactored(shape: Shape) -> (NdArray<f64>, Refactored<f64>, Refactorer<f64>) {
        let orig = NdArray::from_fn(shape, |i| {
            (i[0] as f64 * 0.07).sin() * (i[1] as f64 * 0.05).cos() + 0.1
        });
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut d = orig.clone();
        r.decompose(&mut d);
        let h = r.hierarchy().clone();
        (orig, Refactored::from_array(&d, &h), r)
    }

    #[test]
    fn s_zero_matches_uniform_quantizer() {
        let (_, refac, _) = refactored(Shape::d2(33, 33));
        let tau = 1e-3;
        let uniform = quantize::quantize(&refac, tau);
        let snorm = quantize_snorm(&refac, tau, 0.0).into_uniform();
        assert_eq!(uniform, snorm);
    }

    #[test]
    fn bins_decay_toward_coarse_levels_for_positive_s() {
        let bins = snorm_bins(1e-2, 6, 1.0);
        for w in bins.windows(2) {
            assert!(w[0] < w[1], "{bins:?}");
        }
        // bin ratio between adjacent classes = 2^s
        assert!((bins[1] / bins[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn positive_s_improves_compression_of_smooth_data() {
        use crate::entropy;
        let (_, refac, _) = refactored(Shape::d2(129, 129));
        let tau = 1e-3;
        let size = |q: &SnormQuantized| -> usize {
            q.classes.iter().map(|c| entropy::encode(c).len()).sum()
        };
        let s0 = size(&quantize_snorm(&refac, tau, 0.0));
        let s1 = size(&quantize_snorm(&refac, tau, 1.0));
        assert!(
            s1 < s0,
            "s=1 should shrink the payload on smooth data: {s1} vs {s0}"
        );
    }

    #[test]
    fn round_trip_error_still_bounded_for_s_zero() {
        let (orig, refac, mut r) = refactored(Shape::d2(33, 33));
        let tau = 1e-3;
        let q = quantize_snorm(&refac, tau, 0.0);
        let back: Refactored<f64> = dequantize_snorm(&q, refac.hierarchy().clone());
        let rec = reconstruct_prefix(&back, back.num_classes(), &mut r);
        let err = mg_grid::real::max_abs_diff(rec.as_slice(), orig.as_slice());
        assert!(err <= tau, "{err}");
    }

    #[test]
    fn per_class_error_bounded_by_its_half_bin() {
        let (_, refac, _) = refactored(Shape::d2(33, 33));
        let q = quantize_snorm(&refac, 1e-2, 0.75);
        let back: Refactored<f64> = dequantize_snorm(&q, refac.hierarchy().clone());
        for k in 0..refac.num_classes() {
            for (a, b) in refac.class(k).iter().zip(back.class(k)) {
                assert!((a - b).abs() <= q.bins[k] / 2.0 + 1e-15);
            }
        }
    }

    #[test]
    fn negative_s_protects_fine_detail() {
        let bins = snorm_bins(1e-2, 5, -0.5);
        for w in bins.windows(2) {
            assert!(w[0] > w[1], "{bins:?}");
        }
    }
}
