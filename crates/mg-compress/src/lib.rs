//! MGARD-style error-bounded lossy compression (paper §V-B).
//!
//! The MGARD compression workflow has three stages: multigrid-based data
//! refactoring, quantization, and entropy (lossless) encoding. This crate
//! implements all three from scratch:
//!
//! * [`quantize`] — level-aware uniform scalar quantization whose bin
//!   widths are chosen so the end-to-end reconstruction satisfies a
//!   user-supplied L∞ error bound;
//! * [`entropy`] — a canonical-Huffman + zero-run-length lossless coder
//!   (standing in for the ZLib stage of the original, same pipeline
//!   position);
//! * [`snorm`] — level-weighted (smoothness-norm) quantization, the
//!   paper's refs [5–7] capability: better ratios when accuracy matters
//!   most at low frequencies;
//! * [`pipeline`] — the end-to-end [`Compressor`]
//!   with per-stage timing, used by the Fig. 11 harness.

pub mod entropy;
pub mod pipeline;
pub mod quantize;
pub mod snorm;

pub use pipeline::{Compressed, Compressor, StageTimings};
