//! The end-to-end MGARD-style compressor (refactor → quantize → encode).

use crate::entropy;
use crate::quantize::{self, Quantized};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mg_core::{ExecPlan, Refactorer};
use mg_grid::{Hierarchy, NdArray, Real, Shape};
use mg_refactor::classes::Refactored;
use std::time::{Duration, Instant};

/// Wall-clock time per pipeline stage (drives the Fig. 11 harness).
#[derive(Copy, Clone, Debug, Default)]
pub struct StageTimings {
    /// Multigrid decomposition (compress) or recomposition (decompress).
    pub refactor: Duration,
    /// Quantization / dequantization.
    pub quantize: Duration,
    /// Entropy encode / decode.
    pub entropy: Duration,
}

impl StageTimings {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.refactor + self.quantize + self.entropy
    }
}

/// A compressed payload plus bookkeeping.
#[derive(Clone, Debug)]
pub struct Compressed {
    /// The encoded payload.
    pub bytes: Bytes,
    /// Size of the uncompressed input, bytes.
    pub original_bytes: usize,
    /// Wall-clock spent per stage while compressing.
    pub timings: StageTimings,
}

impl Compressed {
    /// Compression ratio (original / compressed).
    pub fn ratio(&self) -> f64 {
        self.original_bytes as f64 / self.bytes.len() as f64
    }
}

const MAGIC: u32 = 0x4D47_435A; // "MGCZ"

/// Error-bounded lossy compressor for dyadic grids.
///
/// Guarantees `||decompress(compress(u)) - u||_∞ <= tau`.
pub struct Compressor<T: Real> {
    refactorer: Refactorer<T>,
    tau: f64,
}

impl<T: Real> Compressor<T> {
    /// Compressor for `shape` with L-inf error bound `tau`.
    pub fn new(shape: Shape, tau: f64) -> Self {
        assert!(tau > 0.0, "error bound must be positive");
        Compressor {
            refactorer: Refactorer::new(shape).expect("dyadic shape required"),
            tau,
        }
    }

    /// Use rayon-parallel kernels for the refactoring stage (keeps the
    /// current layout).
    pub fn parallel(mut self) -> Self {
        let plan = self
            .refactorer
            .current_plan()
            .with_threading(mg_core::Threading::Parallel);
        self.refactorer = self.refactorer.plan(plan);
        self
    }

    /// Select the full execution plan (threading × layout) for the
    /// refactoring stage; all plans produce identical payloads.
    pub fn plan(mut self, plan: impl Into<ExecPlan>) -> Self {
        self.refactorer = self.refactorer.plan(plan);
        self
    }

    /// The configured error bound.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The grid this compressor accepts.
    pub fn shape(&self) -> Shape {
        self.refactorer.hierarchy().finest()
    }

    /// Compress `data` (shape must match the compressor's grid).
    pub fn compress(&mut self, data: &NdArray<T>) -> Compressed {
        assert_eq!(data.shape(), self.shape());
        let mut timings = StageTimings::default();

        // Stage 1: multigrid decomposition.
        let t0 = Instant::now();
        let mut work = data.clone();
        self.refactorer.decompose(&mut work);
        let hier = self.refactorer.hierarchy().clone();
        let refac = Refactored::from_array(&work, &hier);
        timings.refactor = t0.elapsed();

        // Stage 2: quantization.
        let t0 = Instant::now();
        let q = quantize::quantize(&refac, self.tau);
        timings.quantize = t0.elapsed();

        // Stage 3: entropy coding, one block per class (classes keep
        // their identity so partial reads remain possible).
        let t0 = Instant::now();
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_f64_le(q.bin);
        buf.put_u8(self.shape().ndim() as u8);
        for &d in self.shape().as_slice() {
            buf.put_u64_le(d as u64);
        }
        buf.put_u32_le(q.classes.len() as u32);
        for c in &q.classes {
            let enc = entropy::encode(c);
            buf.put_u64_le(enc.len() as u64);
            buf.put_slice(&enc);
        }
        timings.entropy = t0.elapsed();

        Compressed {
            bytes: buf.freeze(),
            original_bytes: data.len() * T::BYTES,
            timings,
        }
    }

    /// Decompress a payload produced by [`Compressor::compress`].
    ///
    /// # Panics
    /// On malformed payloads (magic/shape mismatch, truncation).
    pub fn decompress(&mut self, compressed: &Compressed) -> (NdArray<T>, StageTimings) {
        self.decompress_prefix(compressed, usize::MAX)
    }

    /// Progressive decompression: decode only the first `count` classes
    /// (the rest are treated as zero), trading accuracy for decode time
    /// and read bytes — classes are independently entropy-coded exactly
    /// so this works.
    pub fn decompress_prefix(
        &mut self,
        compressed: &Compressed,
        count: usize,
    ) -> (NdArray<T>, StageTimings) {
        let mut timings = StageTimings::default();
        let mut buf = compressed.bytes.clone();

        // Stage 3⁻¹: entropy decode.
        let t0 = Instant::now();
        assert_eq!(buf.get_u32_le(), MAGIC, "bad magic");
        let bin = buf.get_f64_le();
        let ndim = buf.get_u8() as usize;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(buf.get_u64_le() as usize);
        }
        let shape = Shape::new(&dims);
        assert_eq!(shape, self.shape(), "shape mismatch");
        let nclasses = buf.get_u32_le() as usize;
        let hier_tmp = Hierarchy::new(shape).unwrap();
        let mut classes = Vec::with_capacity(nclasses);
        for k in 0..nclasses {
            let len = buf.get_u64_le() as usize;
            let block = buf.copy_to_bytes(len);
            if k < count.max(1) {
                classes.push(entropy::decode(&block).expect("corrupt entropy block"));
            } else {
                let expect = if k == 0 {
                    hier_tmp.level_len(0)
                } else {
                    hier_tmp.class_len(k)
                };
                classes.push(vec![0i64; expect]);
            }
        }
        timings.entropy = t0.elapsed();

        // Stage 2⁻¹: dequantize.
        let t0 = Instant::now();
        let hier = Hierarchy::new(shape).unwrap();
        let q = Quantized { classes, bin };
        let refac: Refactored<T> = quantize::dequantize(&q, hier);
        timings.quantize = t0.elapsed();

        // Stage 1⁻¹: recompose.
        let t0 = Instant::now();
        let mut arr = refac.assemble(refac.num_classes());
        self.refactorer.recompose(&mut arr);
        timings.refactor = t0.elapsed();

        (arr, timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_grid::real::max_abs_diff;

    fn smoothish(shape: Shape) -> NdArray<f64> {
        NdArray::from_fn(shape, |i| {
            let x = i[0] as f64 * 0.1;
            let y = i.get(1).map(|&v| v as f64 * 0.07).unwrap_or(0.0);
            (x + y).sin() + 0.3 * (2.0 * x - y).cos()
        })
    }

    #[test]
    fn error_bound_respected() {
        for tau in [1e-2, 1e-4] {
            let shape = Shape::d2(65, 65);
            let data = smoothish(shape);
            let mut c = Compressor::<f64>::new(shape, tau);
            let blob = c.compress(&data);
            let (back, _) = c.decompress(&blob);
            let err = max_abs_diff(back.as_slice(), data.as_slice());
            assert!(err <= tau, "tau {tau}: err {err}");
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let shape = Shape::d2(129, 129);
        let data = smoothish(shape);
        let mut c = Compressor::<f64>::new(shape, 1e-3);
        let blob = c.compress(&data);
        assert!(blob.ratio() > 2.5, "ratio {}", blob.ratio());
    }

    #[test]
    fn looser_bound_compresses_better() {
        let shape = Shape::d2(129, 129);
        let data = smoothish(shape);
        let r_loose = Compressor::<f64>::new(shape, 1e-1).compress(&data).ratio();
        let r_tight = Compressor::<f64>::new(shape, 1e-6).compress(&data).ratio();
        assert!(r_loose > r_tight, "{r_loose} vs {r_tight}");
    }

    #[test]
    fn random_data_still_bounded() {
        let shape = Shape::d2(33, 33);
        let data = NdArray::from_fn(shape, |i| {
            (((i[0] * 2654435761 + i[1] * 40503) % 1000) as f64) / 500.0 - 1.0
        });
        let tau = 5e-2;
        let mut c = Compressor::<f64>::new(shape, tau);
        let blob = c.compress(&data);
        let (back, _) = c.decompress(&blob);
        assert!(max_abs_diff(back.as_slice(), data.as_slice()) <= tau);
    }

    #[test]
    fn timings_populated() {
        let shape = Shape::d2(65, 65);
        let data = smoothish(shape);
        let mut c = Compressor::<f64>::new(shape, 1e-3);
        let blob = c.compress(&data);
        assert!(blob.timings.refactor.as_nanos() > 0);
        assert!(blob.timings.entropy.as_nanos() > 0);
        let (_, dt) = c.decompress(&blob);
        assert!(dt.refactor.as_nanos() > 0);
    }

    #[test]
    fn parallel_compressor_matches_serial() {
        let shape = Shape::d2(65, 65);
        let data = smoothish(shape);
        let blob_s = Compressor::<f64>::new(shape, 1e-3).compress(&data);
        let blob_p = Compressor::<f64>::new(shape, 1e-3)
            .parallel()
            .compress(&data);
        assert_eq!(blob_s.bytes, blob_p.bytes);
    }

    #[test]
    fn all_plans_produce_identical_payloads() {
        use mg_core::{Layout, Threading};
        let shape = Shape::d2(65, 65);
        let data = smoothish(shape);
        let reference = Compressor::<f64>::new(shape, 1e-3).compress(&data);
        for layout in [
            Layout::Packed,
            Layout::InPlace,
            Layout::tiled(),
            Layout::Strided,
        ] {
            for threading in [Threading::Serial, Threading::Parallel] {
                let plan = ExecPlan::new(threading, layout);
                let mut c = Compressor::<f64>::new(shape, 1e-3).plan(plan);
                let blob = c.compress(&data);
                assert_eq!(blob.bytes, reference.bytes, "{plan:?}");
                let (back, _) = c.decompress(&blob);
                let err = max_abs_diff(back.as_slice(), data.as_slice());
                assert!(err <= 1e-3, "{plan:?}: {err}");
            }
        }
    }

    #[test]
    fn three_d_round_trip() {
        let shape = Shape::d3(17, 17, 17);
        let data = NdArray::from_fn(shape, |i| ((i[0] + i[1] * 2 + i[2] * 3) as f64 * 0.2).sin());
        let tau = 1e-3;
        let mut c = Compressor::<f64>::new(shape, tau).parallel();
        let blob = c.compress(&data);
        let (back, _) = c.decompress(&blob);
        assert!(max_abs_diff(back.as_slice(), data.as_slice()) <= tau);
        assert!(blob.ratio() > 1.5, "ratio {}", blob.ratio());
    }

    #[test]
    fn prefix_decompression_is_lossy_but_bounded_progression() {
        let shape = Shape::d2(65, 65);
        let data = smoothish(shape);
        let mut c = Compressor::<f64>::new(shape, 1e-4);
        let blob = c.compress(&data);
        let mut last = f64::INFINITY;
        let nclasses = 7; // L + 1 for 65x65
        for k in [2usize, 4, nclasses] {
            let (back, _) = c.decompress_prefix(&blob, k);
            let err = max_abs_diff(back.as_slice(), data.as_slice());
            assert!(err <= last * (1.0 + 1e-9), "k {k}: {err} > {last}");
            last = err;
        }
        assert!(last <= 1e-4, "full prefix must meet tau: {last}");
    }

    #[test]
    #[should_panic(expected = "bad magic")]
    fn rejects_garbage() {
        let shape = Shape::d1(9);
        let mut c = Compressor::<f64>::new(shape, 1e-3);
        let fake = Compressed {
            bytes: Bytes::from_static(&[0u8; 64]),
            original_bytes: 72,
            timings: StageTimings::default(),
        };
        c.decompress(&fake);
    }
}
