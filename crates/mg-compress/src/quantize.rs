//! Error-controlled uniform quantization of refactored data.
//!
//! Quantizing coefficient class `l` with bin width `b` perturbs each
//! coefficient by at most `b/2`; by the reconstruction-error indicator
//! (see `mg_refactor::error`), the resulting L∞ error is at most
//! `κ · Σ_l b_l / 2`. Choosing a uniform `b = 2·tau / (κ · nclasses)`
//! therefore keeps the decompressed data within `tau` of the original.

use mg_grid::Real;
use mg_refactor::classes::Refactored;
use mg_refactor::error::LINF_INDICATOR_KAPPA;

/// Quantized refactored data: one symbol stream per class plus the bin
/// width used.
#[derive(Clone, Debug, PartialEq)]
pub struct Quantized {
    /// Signed quantization indices, per class (class 0 first).
    pub classes: Vec<Vec<i64>>,
    /// Bin width used for every class.
    pub bin: f64,
}

/// Bin width guaranteeing an end-to-end L∞ bound of `tau`.
pub fn bin_for_tau(tau: f64, nclasses: usize) -> f64 {
    assert!(tau > 0.0, "error bound must be positive");
    2.0 * tau / (LINF_INDICATOR_KAPPA * nclasses.max(1) as f64)
}

/// Quantize every class with the bin width for `tau`.
pub fn quantize<T: Real>(refac: &Refactored<T>, tau: f64) -> Quantized {
    let bin = bin_for_tau(tau, refac.num_classes());
    let classes = refac
        .classes()
        .iter()
        .map(|c| {
            c.iter()
                .map(|&v| (v.to_f64() / bin).round() as i64)
                .collect()
        })
        .collect();
    Quantized { classes, bin }
}

/// Reconstruct the (perturbed) refactored representation.
pub fn dequantize<T: Real>(q: &Quantized, hier: mg_grid::Hierarchy) -> Refactored<T> {
    let classes = q
        .classes
        .iter()
        .map(|c| c.iter().map(|&i| T::from_f64(i as f64 * q.bin)).collect())
        .collect();
    Refactored::from_classes(hier, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::Refactorer;
    use mg_grid::{NdArray, Shape};
    use mg_refactor::progressive::reconstruct_prefix;

    fn refactored(shape: Shape) -> (NdArray<f64>, Refactored<f64>, Refactorer<f64>) {
        let orig = NdArray::from_fn(shape, |i| {
            ((i[0] * 13 + i[1] * 7) % 23) as f64 * 0.1 + (i[0] as f64 * 0.2).sin()
        });
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut d = orig.clone();
        r.decompose(&mut d);
        let h = r.hierarchy().clone();
        (orig, Refactored::from_array(&d, &h), r)
    }

    #[test]
    fn quantization_error_within_half_bin() {
        let (_, refac, _) = refactored(Shape::d2(17, 17));
        let q = quantize(&refac, 1e-3);
        let back: Refactored<f64> = dequantize(&q, refac.hierarchy().clone());
        for k in 0..refac.num_classes() {
            for (a, b) in refac.class(k).iter().zip(back.class(k)) {
                assert!((a - b).abs() <= q.bin / 2.0 + 1e-15);
            }
        }
    }

    #[test]
    fn end_to_end_error_bounded_by_tau() {
        for tau in [1e-1, 1e-3, 1e-6] {
            let (orig, refac, mut r) = refactored(Shape::d2(33, 33));
            let q = quantize(&refac, tau);
            let back = dequantize::<f64>(&q, refac.hierarchy().clone());
            let rec = reconstruct_prefix(&back, back.num_classes(), &mut r);
            let err = mg_grid::real::max_abs_diff(rec.as_slice(), orig.as_slice());
            assert!(err <= tau, "tau {tau}: err {err}");
        }
    }

    #[test]
    fn tighter_tau_means_larger_symbols() {
        let (_, refac, _) = refactored(Shape::d2(17, 17));
        let loose = quantize(&refac, 1e-1);
        let tight = quantize(&refac, 1e-4);
        let max_loose = loose
            .classes
            .iter()
            .flatten()
            .map(|v| v.abs())
            .max()
            .unwrap();
        let max_tight = tight
            .classes
            .iter()
            .flatten()
            .map(|v| v.abs())
            .max()
            .unwrap();
        assert!(max_tight > max_loose * 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_tau() {
        bin_for_tau(0.0, 5);
    }
}
