//! Lossless entropy coding: zero-run-length + canonical Huffman.
//!
//! Stands in for the ZLib stage of the original MGARD pipeline (§V-B).
//! Quantized multigrid coefficients are strongly concentrated around zero
//! with long exact-zero runs in the fine classes, so the coder first
//! collapses zero runs, then Huffman-codes a small symbol alphabet:
//!
//! * symbols `0..=239`: zigzag-encoded small values;
//! * symbols `240..=247` (ESC1..ESC8): larger value — the symbol selects
//!   how many raw bytes of the zigzag value follow (1..=8);
//! * symbol `255` (ZRUN): a run of zeros — varint length follows.
//!
//! The format is self-contained: a header with the symbol lengths
//! precedes the bitstream, so decoding needs no side channel.

/// Alphabet size: 240 literal symbols + 8 escape tiers + ZRUN.
const ALPHABET: usize = 256;
/// First escape symbol; ESC_BASE + k carries k+1 raw bytes.
const ESC_BASE: u32 = 240;
const ZRUN: u32 = 255;
/// Zigzag values 0..=239 are literal symbols.
const MAX_LITERAL_ZZ: u64 = 239;
/// Minimum zero-run worth a ZRUN symbol.
const MIN_RUN: usize = 4;
/// Maximum Huffman code length (canonical, length-limited by rebuild).
const MAX_CODE_LEN: u32 = 32;

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

// ---------------------------------------------------------------- bit io

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn put(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 57);
        self.acc |= bits << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    #[inline]
    fn get(&mut self, n: u32) -> Option<u64> {
        if n == 0 {
            return Some(0);
        }
        self.refill();
        if self.nbits < n {
            return None;
        }
        let v = self.acc & ((1u64 << n) - 1);
        self.acc >>= n;
        self.nbits -= n;
        Some(v)
    }

    /// Read one bit at a time until a valid Huffman code is found.
    #[inline]
    fn get_bit(&mut self) -> Option<u32> {
        self.get(1).map(|b| b as u32)
    }

    /// Peek up to `n` bits without consuming; returns (bits, available).
    #[inline]
    fn peek(&mut self, n: u32) -> (u64, u32) {
        self.refill();
        let avail = self.nbits.min(n);
        (self.acc & ((1u64 << avail) - 1), avail)
    }

    /// Consume `n` bits previously peeked.
    #[inline]
    fn consume(&mut self, n: u32) {
        debug_assert!(self.nbits >= n);
        self.acc >>= n;
        self.nbits -= n;
    }
}

// ----------------------------------------------------------- huffman

/// Compute canonical Huffman code lengths for the given frequencies.
fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    let n = freqs.len();
    // Heap-based Huffman tree; ties broken by symbol index for
    // determinism.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Node(u64, usize); // (weight, node id)

    let mut weights: Vec<u64> = freqs.to_vec();
    let present: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    if present.is_empty() {
        return vec![0; n];
    }
    if present.len() == 1 {
        let mut l = vec![0; n];
        l[present[0]] = 1;
        return l;
    }
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    let mut heap: BinaryHeap<Reverse<Node>> = present
        .iter()
        .map(|&i| Reverse(Node(freqs[i], i)))
        .collect();
    while heap.len() > 1 {
        let Reverse(Node(wa, a)) = heap.pop().unwrap();
        let Reverse(Node(wb, b)) = heap.pop().unwrap();
        let id = parent.len();
        parent.push(usize::MAX);
        weights.push(wa + wb);
        parent[a] = id;
        parent[b] = id;
        heap.push(Reverse(Node(wa + wb, id)));
    }
    let mut lengths = vec![0u32; n];
    for &i in &present {
        let mut depth = 0;
        let mut cur = i;
        while parent[cur] != usize::MAX {
            cur = parent[cur];
            depth += 1;
        }
        lengths[i] = depth;
    }
    // Length-limit by flattening frequencies if needed (rare).
    if lengths.iter().any(|&l| l > MAX_CODE_LEN) {
        let flattened: Vec<u64> = freqs
            .iter()
            .map(|&f| if f > 0 { 1 + f.ilog2() as u64 } else { 0 })
            .collect();
        return code_lengths(&flattened);
    }
    lengths
}

/// Assign canonical codes from lengths: shorter codes first, then by
/// symbol index; codes are emitted LSB-first in the stream, so we store
/// the bit-reversed value.
fn canonical_codes(lengths: &[u32]) -> Vec<u64> {
    let mut symbols: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
    symbols.sort_by_key(|&i| (lengths[i], i));
    let mut codes = vec![0u64; lengths.len()];
    let mut code = 0u64;
    let mut prev_len = 0u32;
    for &s in &symbols {
        code <<= lengths[s] - prev_len;
        prev_len = lengths[s];
        // reverse bits for LSB-first emission
        let mut rev = 0u64;
        for b in 0..lengths[s] {
            rev |= ((code >> b) & 1) << (lengths[s] - 1 - b);
        }
        codes[s] = rev;
        code += 1;
    }
    codes
}

/// Bits resolved by the decode lookup table; codes longer than this fall
/// back to the per-length row walk.
const LUT_BITS: u32 = 11;

/// Canonical decoder: a `2^LUT_BITS` lookup table resolves short codes in
/// one probe; per-length rows of (length, first code, start index, count)
/// over the length-then-symbol-sorted alphabet handle the tail.
struct FastDecoder {
    /// per length: (first_code, start_index, count)
    rows: Vec<(u32, u64, usize, usize)>,
    sorted: Vec<usize>,
    /// `lut[prefix] = (symbol, code_len)`; symbol == u16::MAX means the
    /// code is longer than LUT_BITS.
    lut: Vec<(u16, u8)>,
}

impl FastDecoder {
    fn new(lengths: &[u32]) -> Self {
        let mut symbols: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
        symbols.sort_by_key(|&i| (lengths[i], i));
        let mut rows = Vec::new();
        let mut code = 0u64;
        let mut prev_len = 0u32;
        let mut i = 0;
        while i < symbols.len() {
            let l = lengths[symbols[i]];
            code <<= l - prev_len;
            prev_len = l;
            let first = code;
            let start = i;
            while i < symbols.len() && lengths[symbols[i]] == l {
                code += 1;
                i += 1;
            }
            rows.push((l, first, start, i - start));
        }
        // Build the lookup table: stream bits arrive LSB-first but the
        // canonical code accumulates MSB-first, so index the table by the
        // bit-reversed peek value.
        let mut lut = vec![(u16::MAX, 0u8); 1 << LUT_BITS];
        for &(l, first, start, count) in &rows {
            if l > LUT_BITS {
                continue;
            }
            for c in 0..count as u64 {
                let code = first + c;
                let sym = symbols[start + c as usize] as u16;
                // All peek values whose first l stream bits spell `code`.
                let fill = LUT_BITS - l;
                for rest in 0..(1u64 << fill) {
                    // stream bit i (i < l) = bit (l-1-i) of code
                    let mut idx = 0u64;
                    for i in 0..l {
                        idx |= ((code >> (l - 1 - i)) & 1) << i;
                    }
                    idx |= rest << l;
                    lut[idx as usize] = (sym, l as u8);
                }
            }
        }
        FastDecoder {
            rows,
            sorted: symbols,
            lut,
        }
    }

    #[inline]
    fn decode(&self, r: &mut BitReader) -> Option<u32> {
        // Fast path: one table probe when enough bits are buffered.
        let (peek, avail) = r.peek(LUT_BITS);
        if avail == LUT_BITS {
            let (sym, len) = self.lut[peek as usize];
            if sym != u16::MAX {
                r.consume(len as u32);
                return Some(sym as u32);
            }
        }
        self.decode_slow(r)
    }

    /// Bit-by-bit row walk (long codes and end-of-stream tails).
    fn decode_slow(&self, r: &mut BitReader) -> Option<u32> {
        let mut code = 0u64;
        let mut len = 0u32;
        for &(l, first, start, count) in &self.rows {
            while len < l {
                code = (code << 1) | r.get_bit()? as u64;
                len += 1;
            }
            if code >= first && code < first + count as u64 {
                return Some(self.sorted[start + (code - first) as usize] as u32);
            }
        }
        None
    }
}

// ------------------------------------------------------------ public api

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntropyError {
    /// Bitstream ended before all values were decoded.
    Truncated,
    /// Header malformed (size or code lengths).
    BadHeader,
    /// Decoded symbol inconsistent with the payload.
    BadSymbol,
}

impl std::fmt::Display for EntropyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntropyError::Truncated => write!(f, "bitstream truncated"),
            EntropyError::BadHeader => write!(f, "malformed header"),
            EntropyError::BadSymbol => write!(f, "invalid symbol"),
        }
    }
}

impl std::error::Error for EntropyError {}

/// Encode a slice of signed quantization indices.
pub fn encode(values: &[i64]) -> Vec<u8> {
    // Tokenize: (symbol, extra-bits payload)
    enum Tok {
        Sym(u32),
        /// (escape symbol, zigzag value, raw bytes)
        Esc(u32, u64, u32),
        Run(u64),
    }
    let mut toks: Vec<Tok> = Vec::new();
    let mut freqs = vec![0u64; ALPHABET];
    let mut i = 0;
    while i < values.len() {
        if values[i] == 0 {
            let mut j = i;
            while j < values.len() && values[j] == 0 {
                j += 1;
            }
            let run = j - i;
            if run >= MIN_RUN {
                freqs[ZRUN as usize] += 1;
                toks.push(Tok::Run(run as u64));
                i = j;
                continue;
            }
        }
        let z = zigzag(values[i]);
        if z <= MAX_LITERAL_ZZ {
            freqs[z as usize] += 1;
            toks.push(Tok::Sym(z as u32));
        } else {
            let nbytes = (64 - z.leading_zeros()).div_ceil(8).max(1);
            let sym = ESC_BASE + nbytes - 1;
            freqs[sym as usize] += 1;
            toks.push(Tok::Esc(sym, z, nbytes));
        }
        i += 1;
    }

    let lengths = code_lengths(&freqs);
    let codes = canonical_codes(&lengths);

    let mut w = BitWriter::new();
    // Header: value count (u64), then 256 lengths (6 bits each).
    let mut out = Vec::with_capacity(values.len() / 2 + 64);
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for &l in &lengths {
        debug_assert!(l <= MAX_CODE_LEN);
        out.push(l as u8);
    }
    for t in &toks {
        match *t {
            Tok::Sym(s) => w.put(codes[s as usize], lengths[s as usize]),
            Tok::Esc(sym, z, nbytes) => {
                w.put(codes[sym as usize], lengths[sym as usize]);
                // raw bytes, low to high (put() caps at 57 bits/call)
                for b in 0..nbytes {
                    w.put((z >> (8 * b)) & 0xFF, 8);
                }
            }
            Tok::Run(r) => {
                w.put(codes[ZRUN as usize], lengths[ZRUN as usize]);
                // varint: 7 bits + continuation
                let mut v = r;
                loop {
                    let byte = v & 0x7F;
                    v >>= 7;
                    w.put(byte | if v > 0 { 0x80 } else { 0 }, 8);
                    if v == 0 {
                        break;
                    }
                }
            }
        }
    }
    out.extend_from_slice(&w.finish());
    out
}

/// Decode a buffer produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Vec<i64>, EntropyError> {
    if data.len() < 8 + ALPHABET {
        return Err(EntropyError::BadHeader);
    }
    let count = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
    let lengths: Vec<u32> = data[8..8 + ALPHABET].iter().map(|&b| b as u32).collect();
    if lengths.iter().any(|&l| l > MAX_CODE_LEN) {
        return Err(EntropyError::BadHeader);
    }
    let dec = FastDecoder::new(&lengths);
    let mut r = BitReader::new(&data[8 + ALPHABET..]);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let s = dec.decode(&mut r).ok_or(EntropyError::Truncated)?;
        match s {
            s if (ESC_BASE..ZRUN).contains(&s) => {
                let nbytes = s - ESC_BASE + 1;
                let mut z = 0u64;
                for b in 0..nbytes {
                    let byte = r.get(8).ok_or(EntropyError::Truncated)?;
                    z |= byte << (8 * b);
                }
                out.push(unzigzag(z));
            }
            ZRUN => {
                let mut run = 0u64;
                let mut shift = 0u32;
                loop {
                    let byte = r.get(8).ok_or(EntropyError::Truncated)?;
                    run |= (byte & 0x7F) << shift;
                    shift += 7;
                    if byte & 0x80 == 0 {
                        break;
                    }
                    if shift > 63 {
                        return Err(EntropyError::BadSymbol);
                    }
                }
                if out.len() + run as usize > count {
                    return Err(EntropyError::BadSymbol);
                }
                out.extend(std::iter::repeat_n(0i64, run as usize));
            }
            z => out.push(unzigzag(z as u64)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trip() {
        for v in [-5i64, -1, 0, 1, 7, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn round_trip_small_values() {
        let vals: Vec<i64> = (-100..100).collect();
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn round_trip_with_zero_runs() {
        let mut vals = vec![0i64; 1000];
        vals[500] = 42;
        vals[999] = -7;
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn round_trip_large_escapes() {
        let vals = vec![i64::MAX / 4, -(1 << 40), 3, 0, 0, 0, 0, 0, 1 << 33];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn empty_input() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn single_symbol_stream() {
        let vals = vec![5i64; 37];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn compresses_sparse_data() {
        let mut vals = vec![0i64; 100_000];
        for i in (0..100_000).step_by(1000) {
            vals[i] = (i % 50) as i64 - 25;
        }
        let enc = encode(&vals);
        assert!(
            enc.len() < vals.len() * 8 / 50,
            "expected >50x compression on sparse data, got {} bytes",
            enc.len()
        );
        assert_eq!(decode(&enc).unwrap(), vals);
    }

    #[test]
    fn skewed_distribution_beats_flat_coding() {
        // Mostly small symbols => average code length well under 8 bits.
        let vals: Vec<i64> = (0..50_000i64).map(|i| ((i * i) % 7) - 3).collect();
        let enc = encode(&vals);
        assert!(enc.len() < 50_000 * 8 / 10, "got {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), vals);
    }

    #[test]
    fn long_codes_exercise_the_slow_path() {
        // Exponentially skewed frequencies push some code lengths past
        // LUT_BITS, exercising the row-walk fallback alongside the table.
        let mut vals: Vec<i64> = Vec::new();
        let mut count = 1usize;
        for sym in 0..40i64 {
            for _ in 0..count {
                vals.push(sym - 20);
            }
            if sym % 2 == 1 {
                count = (count * 2).min(1 << 14);
            }
        }
        let enc = encode(&vals);
        assert_eq!(decode(&enc).unwrap(), vals);
    }

    #[test]
    fn truncation_is_detected() {
        let vals: Vec<i64> = (0..100).map(|i| i % 17 - 8).collect();
        let enc = encode(&vals);
        let cut = &enc[..enc.len() - 5];
        assert!(decode(cut).is_err());
    }

    #[test]
    fn header_validation() {
        assert_eq!(decode(&[0u8; 4]), Err(EntropyError::BadHeader));
        let mut bad = encode(&[1, 2, 3]);
        bad[9] = 60; // invalid code length
        assert_eq!(decode(&bad), Err(EntropyError::BadHeader));
    }
}

#[cfg(test)]
mod tests_edge {
    use super::*;

    #[test]
    fn all_zeros_is_one_run() {
        let vals = vec![0i64; 100_000];
        let enc = encode(&vals);
        // header (8 + 256) + one ZRUN token: a few bytes of stream.
        assert!(enc.len() < 8 + 256 + 16, "got {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), vals);
    }

    #[test]
    fn runs_below_threshold_stay_literal() {
        // MIN_RUN-1 zeros between values: no ZRUN tokens, still correct.
        let mut vals = Vec::new();
        for i in 0..200i64 {
            vals.push(i % 9 - 4);
            vals.extend([0i64; 3]); // MIN_RUN is 4
        }
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn exact_threshold_run() {
        let mut vals = vec![7i64];
        vals.extend([0i64; 4]); // exactly MIN_RUN
        vals.push(-7);
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn extreme_values_round_trip() {
        let vals = vec![i64::MAX, i64::MIN + 1, 0, -1, 1];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn boundary_literal_vs_escape() {
        // zigzag 239 is the last literal; 240 the first escape.
        let v_lit = unzigzag(239);
        let v_esc = unzigzag(240);
        let vals = vec![v_lit, v_esc, v_lit, v_esc];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }
}
