//! Deterministic, seeded fault injection for the serve/gateway wire path.
//!
//! The harness has three pieces:
//!
//! - [`Injector`]: a cheap clonable handle owning a seed and a per-scope
//!   operation counter. Every accepted connection (or dial) draws one
//!   [`ConnPlan`] from it; the plan is a pure function of
//!   `(seed, label, op_index)` — no wall clock anywhere in the schedule —
//!   so a run is exactly reproducible from its seed.
//! - [`FaultStream`]: a `Read`/`Write` wrapper applying one side of a plan
//!   to a raw stream: byte-trickle slow IO, mid-frame disconnects,
//!   bit-flipped bytes, and first-byte latency spikes.
//! - [`FaultProxy`]: a self-contained TCP proxy that fronts an unmodified
//!   server and applies a plan per accepted connection. It needs no
//!   feature gates or server cooperation, which makes it usable from
//!   property tests and benches against any backend.
//!
//! `mg-serve` and `mg-gateway` additionally accept an `Injector` directly
//! (behind their `faults` cargo feature) so faults can be injected inside
//! the real accept loop — connection refusal and accept-then-stall happen
//! before any bytes flow, which a proxy can only approximate.
//!
//! Plan derivation order is part of the schedule contract: for each
//! connection the injector draws, in order, refuse → stall → latency →
//! read-trickle → write-trickle → cut → flip. Changing a rate changes
//! which connections a later draw selects, but the same `FaultSpec` +
//! seed + op index always yields the same plan.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// SplitMix64: the mixing function behind the whole schedule. Public so
/// callers (jitter, tests) can reuse the same deterministic stream.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// FNV-1a over bytes: labels (backend addresses) become schedule scopes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A small deterministic draw stream seeded from one u64.
struct Draw(u64);

impl Draw {
    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    /// True with probability `per_mille`/1000.
    fn chance(&mut self, per_mille: u16) -> bool {
        (self.next() % 1000) < per_mille as u64
    }

    /// Uniform in `[lo, hi)` (`lo` when the range is empty).
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next() % (hi - lo)
    }
}

/// Per-mille rates and shapes for every fault kind the injector can
/// schedule. All rates default to zero: an `Injector` with the default
/// spec is a no-op.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Connection refused outright (dropped before any byte).
    pub refuse_per_mille: u16,
    /// Accepted, held silent for `stall`, then dropped.
    pub stall_per_mille: u16,
    pub stall: Duration,
    /// Latency spike: the first byte written back is delayed by `latency`.
    pub latency_per_mille: u16,
    pub latency: Duration,
    /// Byte-trickle slow reads: incoming bytes arrive `trickle_chunk` at a
    /// time with `trickle_delay` between chunks.
    pub trickle_read_per_mille: u16,
    /// Byte-trickle slow writes (same shape, outgoing direction).
    pub trickle_write_per_mille: u16,
    pub trickle_chunk: usize,
    pub trickle_delay: Duration,
    /// Mid-frame disconnect: the write side dies after a deterministic
    /// number of bytes in `[8, cut_window)`.
    pub cut_per_mille: u16,
    pub cut_window: u64,
    /// Bit flip: one byte at a deterministic offset in `[0, flip_window)`
    /// is XORed with a non-zero mask.
    pub flip_per_mille: u16,
    pub flip_window: u64,
    /// Which direction the flip corrupts: `false` = incoming request
    /// bytes (safe everywhere: requests carry no payload), `true` =
    /// outgoing response bytes. On a keyed deployment the response tag
    /// covers the payload, so any window is detectable; on an unkeyed
    /// one keep `flip_window <= 7` so corruption hits the response
    /// envelope and is caught before any payload byte is trusted.
    pub flip_on_write: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            refuse_per_mille: 0,
            stall_per_mille: 0,
            stall: Duration::from_millis(100),
            latency_per_mille: 0,
            latency: Duration::from_millis(50),
            trickle_read_per_mille: 0,
            trickle_write_per_mille: 0,
            trickle_chunk: 256,
            trickle_delay: Duration::from_millis(1),
            cut_per_mille: 0,
            cut_window: 4096,
            flip_per_mille: 0,
            flip_window: 7,
            flip_on_write: true,
        }
    }
}

/// One direction of a connection plan, applied by [`FaultStream`].
#[derive(Clone, Debug, Default)]
pub struct StreamPlan {
    /// `(chunk, delay)`: at most `chunk` bytes move per syscall, with
    /// `delay` slept before each.
    pub trickle: Option<(usize, Duration)>,
    /// The stream dies after this many bytes: reads report EOF, writes
    /// report `BrokenPipe`.
    pub cut_after: Option<u64>,
    /// `(offset, mask)`: the byte at `offset` is XORed with `mask`.
    pub flip: Option<(u64, u8)>,
    /// Slept once, before the first byte moves in this direction.
    pub first_byte_delay: Option<Duration>,
}

impl StreamPlan {
    pub fn is_noop(&self) -> bool {
        self.trickle.is_none()
            && self.cut_after.is_none()
            && self.flip.is_none()
            && self.first_byte_delay.is_none()
    }
}

/// The full fault plan for one connection.
#[derive(Clone, Debug, Default)]
pub struct ConnPlan {
    /// Drop the connection before any byte (connection refused).
    pub refuse: bool,
    /// Accept, sleep this long, then drop without a byte.
    pub stall: Option<Duration>,
    /// Faults on the incoming (request) direction.
    pub read: StreamPlan,
    /// Faults on the outgoing (response) direction.
    pub write: StreamPlan,
}

impl ConnPlan {
    pub fn is_noop(&self) -> bool {
        !self.refuse && self.stall.is_none() && self.read.is_noop() && self.write.is_noop()
    }
}

/// How many faults of each kind the injector has scheduled so far.
/// Chaos tests assert against these to prove the storm actually fired.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultCounts {
    pub connections: u64,
    pub refused: u64,
    pub stalled: u64,
    pub latency_spikes: u64,
    pub trickled: u64,
    pub cut: u64,
    pub flipped: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    refused: AtomicU64,
    stalled: AtomicU64,
    latency_spikes: AtomicU64,
    trickled: AtomicU64,
    cut: AtomicU64,
    flipped: AtomicU64,
}

struct Inner {
    seed: u64,
    label: u64,
    spec: FaultSpec,
    ops: AtomicU64,
    counts: Counters,
}

/// The seeded fault scheduler. Clones share one op counter, so a single
/// injector handed to an accept loop yields one deterministic schedule
/// across all its worker threads.
#[derive(Clone)]
pub struct Injector {
    inner: Arc<Inner>,
}

impl Injector {
    pub fn new(seed: u64, spec: FaultSpec) -> Injector {
        Injector::labeled(seed, "", spec)
    }

    /// A labeled scope: per-backend injectors derive distinct schedules
    /// from one seed by labeling each with the backend address.
    pub fn labeled(seed: u64, label: &str, spec: FaultSpec) -> Injector {
        Injector {
            inner: Arc::new(Inner {
                seed,
                label: fnv1a(label.as_bytes()),
                spec,
                ops: AtomicU64::new(0),
                counts: Counters::default(),
            }),
        }
    }

    /// Draw the plan for the next connection and advance the op counter.
    pub fn connection_plan(&self) -> ConnPlan {
        let inner = &self.inner;
        let n = inner.ops.fetch_add(1, Ordering::Relaxed);
        inner.counts.connections.fetch_add(1, Ordering::Relaxed);
        let mut draw = Draw(splitmix64(
            inner.seed ^ inner.label ^ n.wrapping_mul(0x9e3779b97f4a7c15),
        ));
        let spec = &inner.spec;
        let mut plan = ConnPlan::default();

        if draw.chance(spec.refuse_per_mille) {
            inner.counts.refused.fetch_add(1, Ordering::Relaxed);
            plan.refuse = true;
            return plan;
        }
        if draw.chance(spec.stall_per_mille) {
            inner.counts.stalled.fetch_add(1, Ordering::Relaxed);
            plan.stall = Some(spec.stall);
            return plan;
        }
        if draw.chance(spec.latency_per_mille) {
            inner.counts.latency_spikes.fetch_add(1, Ordering::Relaxed);
            plan.write.first_byte_delay = Some(spec.latency);
        }
        if draw.chance(spec.trickle_read_per_mille) {
            inner.counts.trickled.fetch_add(1, Ordering::Relaxed);
            plan.read.trickle = Some((spec.trickle_chunk.max(1), spec.trickle_delay));
        }
        if draw.chance(spec.trickle_write_per_mille) {
            inner.counts.trickled.fetch_add(1, Ordering::Relaxed);
            plan.write.trickle = Some((spec.trickle_chunk.max(1), spec.trickle_delay));
        }
        if draw.chance(spec.cut_per_mille) {
            inner.counts.cut.fetch_add(1, Ordering::Relaxed);
            plan.write.cut_after = Some(draw.range(8, spec.cut_window.max(9)));
        }
        if draw.chance(spec.flip_per_mille) {
            inner.counts.flipped.fetch_add(1, Ordering::Relaxed);
            let offset = draw.range(0, spec.flip_window.max(1));
            let mask = (draw.range(1, 256)) as u8;
            let side = if spec.flip_on_write {
                &mut plan.write
            } else {
                &mut plan.read
            };
            side.flip = Some((offset, mask));
        }
        plan
    }

    /// Connections scheduled so far (the op counter).
    pub fn connections_planned(&self) -> u64 {
        self.inner.ops.load(Ordering::Relaxed)
    }

    pub fn counts(&self) -> FaultCounts {
        let c = &self.inner.counts;
        FaultCounts {
            connections: c.connections.load(Ordering::Relaxed),
            refused: c.refused.load(Ordering::Relaxed),
            stalled: c.stalled.load(Ordering::Relaxed),
            latency_spikes: c.latency_spikes.load(Ordering::Relaxed),
            trickled: c.trickled.load(Ordering::Relaxed),
            cut: c.cut.load(Ordering::Relaxed),
            flipped: c.flipped.load(Ordering::Relaxed),
        }
    }
}

/// A `Read`/`Write` wrapper applying one [`StreamPlan`] direction to an
/// underlying stream. Wrap each half of a connection separately: the
/// reader half with `plan.read`, the writer half with `plan.write`.
pub struct FaultStream<S> {
    inner: S,
    plan: StreamPlan,
    pos: u64,
    first_delay_pending: bool,
}

impl<S> FaultStream<S> {
    pub fn new(inner: S, plan: StreamPlan) -> FaultStream<S> {
        let first_delay_pending = plan.first_byte_delay.is_some();
        FaultStream {
            inner,
            plan,
            pos: 0,
            first_delay_pending,
        }
    }

    pub fn into_inner(self) -> S {
        self.inner
    }

    fn apply_flip(&self, buf: &mut [u8], n: usize) {
        if let Some((offset, mask)) = self.plan.flip {
            if offset >= self.pos && offset < self.pos + n as u64 {
                buf[(offset - self.pos) as usize] ^= mask;
            }
        }
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(cut) = self.plan.cut_after {
            if self.pos >= cut {
                return Ok(0); // peer "disconnected"
            }
        }
        let mut cap = buf.len();
        if let Some((chunk, delay)) = self.plan.trickle {
            cap = cap.min(chunk);
            std::thread::sleep(delay);
        }
        if let Some(cut) = self.plan.cut_after {
            cap = cap.min((cut - self.pos) as usize);
        }
        let n = self.inner.read(&mut buf[..cap])?;
        self.apply_flip(buf, n);
        self.pos += n as u64;
        Ok(n)
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.first_delay_pending {
            self.first_delay_pending = false;
            if let Some(delay) = self.plan.first_byte_delay {
                std::thread::sleep(delay);
            }
        }
        if let Some(cut) = self.plan.cut_after {
            if self.pos >= cut {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected mid-frame disconnect",
                ));
            }
        }
        let mut cap = buf.len();
        if let Some((chunk, delay)) = self.plan.trickle {
            cap = cap.min(chunk);
            std::thread::sleep(delay);
        }
        if let Some(cut) = self.plan.cut_after {
            cap = cap.min((cut - self.pos) as usize);
        }
        let mut chunk = buf[..cap].to_vec();
        self.apply_flip(&mut chunk, cap);
        let n = self.inner.write(&chunk)?;
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A TCP proxy applying a fault plan per accepted connection: incoming
/// bytes (client→upstream) pass through `plan.read`, outgoing bytes
/// (upstream→client) through `plan.write`. Lets tests and benches storm
/// an unmodified server or gateway.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on an ephemeral loopback port, forwarding to `upstream`.
    pub fn spawn(upstream: &str, injector: Injector) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let upstream = upstream.to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(client) = stream else { continue };
                let plan = injector.connection_plan();
                if plan.refuse {
                    drop(client);
                    continue;
                }
                if let Some(stall) = plan.stall {
                    std::thread::spawn(move || {
                        std::thread::sleep(stall);
                        drop(client);
                    });
                    continue;
                }
                let upstream = upstream.clone();
                std::thread::spawn(move || {
                    let _ = Self::pump(client, &upstream, plan);
                });
            }
        });
        Ok(FaultProxy {
            addr,
            stop,
            accept_handle: Some(accept_handle),
        })
    }

    fn pump(client: TcpStream, upstream: &str, plan: ConnPlan) -> io::Result<()> {
        let server = TcpStream::connect(upstream)?;
        // Bound every leg so pump threads can't outlive a test run.
        let cap = Some(Duration::from_secs(60));
        let _ = client.set_read_timeout(cap);
        let _ = server.set_read_timeout(cap);
        let c2u = {
            let from = FaultStream::new(client.try_clone()?, plan.read);
            let to = server.try_clone()?;
            let client = client.try_clone()?;
            let server = server.try_clone()?;
            std::thread::spawn(move || {
                Self::copy_until_error(from, to);
                let _ = client.shutdown(std::net::Shutdown::Both);
                let _ = server.shutdown(std::net::Shutdown::Both);
            })
        };
        let from = server.try_clone()?;
        let to = FaultStream::new(client.try_clone()?, plan.write);
        Self::copy_until_error(from, to);
        let _ = client.shutdown(std::net::Shutdown::Both);
        let _ = server.shutdown(std::net::Shutdown::Both);
        let _ = c2u.join();
        Ok(())
    }

    fn copy_until_error(mut from: impl Read, mut to: impl Write) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match from.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => {
                    if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
                        return;
                    }
                }
            }
        }
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop. Active pump threads
    /// drain on their own as their sockets close.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Poke the listener so `incoming()` yields once more.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stormy_spec() -> FaultSpec {
        FaultSpec {
            refuse_per_mille: 150,
            stall_per_mille: 100,
            stall: Duration::from_millis(1),
            latency_per_mille: 100,
            latency: Duration::from_millis(1),
            trickle_read_per_mille: 200,
            trickle_write_per_mille: 200,
            cut_per_mille: 150,
            flip_per_mille: 150,
            ..FaultSpec::default()
        }
    }

    #[test]
    fn schedules_are_deterministic_in_seed_and_op_index() {
        let a = Injector::new(42, stormy_spec());
        let b = Injector::new(42, stormy_spec());
        for _ in 0..500 {
            let (pa, pb) = (a.connection_plan(), b.connection_plan());
            assert_eq!(format!("{pa:?}"), format!("{pb:?}"));
        }
        assert_eq!(a.connections_planned(), 500);
    }

    #[test]
    fn seeds_and_labels_shift_the_schedule() {
        let base = Injector::new(42, stormy_spec());
        let other_seed = Injector::new(43, stormy_spec());
        let other_label = Injector::labeled(42, "backend-1", stormy_spec());
        let plans = |inj: &Injector| {
            (0..200)
                .map(|_| format!("{:?}", inj.connection_plan()))
                .collect::<Vec<_>>()
        };
        let b = plans(&base);
        assert_ne!(b, plans(&other_seed));
        assert_ne!(b, plans(&other_label));
    }

    #[test]
    fn default_spec_is_a_noop() {
        let inj = Injector::new(7, FaultSpec::default());
        for _ in 0..100 {
            assert!(inj.connection_plan().is_noop());
        }
        let c = inj.counts();
        assert_eq!(c.connections, 100);
        assert_eq!(
            c.refused + c.stalled + c.latency_spikes + c.trickled + c.cut + c.flipped,
            0
        );
    }

    #[test]
    fn storm_actually_schedules_every_kind() {
        let inj = Injector::new(0xC0FFEE, stormy_spec());
        for _ in 0..2000 {
            inj.connection_plan();
        }
        let c = inj.counts();
        assert!(c.refused > 0, "{c:?}");
        assert!(c.stalled > 0, "{c:?}");
        assert!(c.latency_spikes > 0, "{c:?}");
        assert!(c.trickled > 0, "{c:?}");
        assert!(c.cut > 0, "{c:?}");
        assert!(c.flipped > 0, "{c:?}");
    }

    #[test]
    fn fault_stream_flips_exactly_one_byte_at_the_planned_offset() {
        let data: Vec<u8> = (0..64u8).collect();
        let plan = StreamPlan {
            flip: Some((10, 0b100)),
            ..StreamPlan::default()
        };
        let mut fs = FaultStream::new(data.as_slice(), plan);
        let mut out = Vec::new();
        // Tiny reads force the flip to land across chunk boundaries.
        let mut chunk = [0u8; 3];
        loop {
            let n = fs.read(&mut chunk).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&chunk[..n]);
        }
        let mut expect: Vec<u8> = (0..64u8).collect();
        expect[10] ^= 0b100;
        assert_eq!(out, expect);
    }

    #[test]
    fn fault_stream_cuts_writes_mid_frame() {
        let plan = StreamPlan {
            cut_after: Some(10),
            ..StreamPlan::default()
        };
        let mut sink = Vec::new();
        let mut fs = FaultStream::new(&mut sink, plan);
        let payload = [7u8; 64];
        let err = fs.write_all(&payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(sink.len(), 10, "exactly cut_after bytes must pass");
    }

    #[test]
    fn fault_stream_trickles_in_chunks() {
        let data = [1u8; 100];
        let plan = StreamPlan {
            trickle: Some((7, Duration::from_micros(10))),
            ..StreamPlan::default()
        };
        let mut fs = FaultStream::new(&data[..], plan);
        let mut buf = [0u8; 64];
        let n = fs.read(&mut buf).unwrap();
        assert_eq!(n, 7, "reads must be capped at the trickle chunk");
    }

    #[test]
    fn proxy_passes_bytes_through_clean_plans() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            s.read_exact(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
        });
        let proxy = FaultProxy::spawn(
            &upstream.to_string(),
            Injector::new(1, FaultSpec::default()),
        )
        .unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.write_all(b"hello").unwrap();
        let mut back = [0u8; 5];
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");
        echo.join().unwrap();
        proxy.shutdown();
    }
}
