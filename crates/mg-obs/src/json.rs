//! Minimal JSON writing helpers (the workspace has no real serde; the
//! vendored shim is derive-only, so export formats are built by hand).

/// Escape `s` for use inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `"key":` fragment with the key escaped.
pub fn key(out: &mut String, name: &str) {
    out.push('"');
    out.push_str(&escape(name));
    out.push_str("\":");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain Ω"), "plain Ω");
    }
}
