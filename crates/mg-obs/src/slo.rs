//! Declarative service-level objectives evaluated with multi-window
//! burn rates.
//!
//! An [`Objective`] states what "good" means (`cached fetch p99 <
//! 2ms`, `error rate < 0.1%`); the [`SloEngine`] re-evaluates every
//! objective against the sampler's windowed series each tick. Each
//! objective is measured over two spans of recent windows — a *fast*
//! span that reacts to spikes and a *slow* span that confirms they are
//! sustained — and the measured value divided by the objective's
//! ceiling is the *burn rate* (1.0 = exactly at the objective). The
//! classic multi-window rule then gives a typed [`SloStatus`]:
//!
//! * **breaching** — both fast and slow burn ≥ 1: the violation is
//!   real and still happening.
//! * **warning** — exactly one of them ≥ 1: either a fresh spike the
//!   slow span hasn't confirmed yet, or a past violation the fast span
//!   shows has stopped (this is the recovery hysteresis: a breach
//!   decays through warning before reaching ok).
//! * **ok** — both below 1.
//!
//! The engine is deliberately pure — windows in, [`SloReport`] out —
//! so burn-rate transitions are unit-testable with synthetic windows;
//! the stateful breach/recover edge detection (and event emission)
//! lives in [`crate::series::Monitor`].

use crate::metrics::HistView;
use crate::series::Window;
use crate::table::Table;

/// What an [`Objective`] constrains.
#[derive(Clone, Debug)]
pub enum SloKind {
    /// `quantile(metric, q)` over the span's merged histogram must
    /// stay below `max` (same unit as the histogram — µs for the
    /// latency hists).
    QuantileBelow { metric: String, q: f64, max: u64 },
    /// `sum(bad counters) / total counter` over the span must stay
    /// below `max_ratio`.
    RatioBelow {
        bad: Vec<String>,
        total: String,
        max_ratio: f64,
    },
}

/// One named objective.
#[derive(Clone, Debug)]
pub struct Objective {
    pub name: String,
    pub kind: SloKind,
}

impl Objective {
    pub fn quantile_below(name: &str, metric: &str, q: f64, max: u64) -> Objective {
        Objective {
            name: name.into(),
            kind: SloKind::QuantileBelow {
                metric: metric.into(),
                q,
                max,
            },
        }
    }

    pub fn ratio_below(name: &str, bad: &[&str], total: &str, max_ratio: f64) -> Objective {
        Objective {
            name: name.into(),
            kind: SloKind::RatioBelow {
                bad: bad.iter().map(|s| (*s).to_string()).collect(),
                total: total.into(),
                max_ratio,
            },
        }
    }

    /// Default objectives for the backend serving tier: request p99
    /// under 2 ms, error (shed + deadline) rate under 0.1%, degrade
    /// rate under 5%.
    pub fn server_defaults() -> Vec<Objective> {
        vec![
            Objective::quantile_below("request_p99", "serve.request_us", 0.99, 2_000),
            Objective::ratio_below(
                "error_rate",
                &["serve.shed", "serve.deadline_exceeded"],
                "serve.requests",
                0.001,
            ),
            Objective::ratio_below("degrade_rate", &["serve.degraded"], "serve.fetches", 0.05),
        ]
    }

    /// Default objectives for the gateway tier: routed p99 under 5 ms
    /// (a fetch crosses one extra hop), error (no live backend +
    /// deadline) rate under 0.1%, degrade rate under 5%.
    pub fn gateway_defaults() -> Vec<Objective> {
        vec![
            Objective::quantile_below("request_p99", "gateway.request_us", 0.99, 5_000),
            Objective::ratio_below(
                "error_rate",
                &["gateway.unavailable", "gateway.deadline_exceeded"],
                "gateway.requests",
                0.001,
            ),
            Objective::ratio_below(
                "degrade_rate",
                &["gateway.degraded"],
                "gateway.fetches",
                0.05,
            ),
        ]
    }
}

/// Typed verdict for one objective.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SloStatus {
    Ok,
    Warning,
    Breaching,
}

impl SloStatus {
    pub fn as_str(&self) -> &'static str {
        match self {
            SloStatus::Ok => "ok",
            SloStatus::Warning => "warning",
            SloStatus::Breaching => "breaching",
        }
    }
}

/// How many recent windows each evaluation span covers.
#[derive(Copy, Clone, Debug)]
pub struct BurnConfig {
    /// Spike-detecting span (reacts within a few ticks).
    pub fast_windows: usize,
    /// Sustain-confirming span.
    pub slow_windows: usize,
}

impl Default for BurnConfig {
    fn default() -> BurnConfig {
        BurnConfig {
            fast_windows: 3,
            slow_windows: 12,
        }
    }
}

/// One objective's evaluation.
#[derive(Clone, Debug)]
pub struct SloEntry {
    pub name: String,
    pub status: SloStatus,
    pub fast_burn: f64,
    pub slow_burn: f64,
}

/// All objectives' evaluations for one tick.
#[derive(Clone, Debug, Default)]
pub struct SloReport {
    pub entries: Vec<SloEntry>,
}

impl SloReport {
    pub fn get(&self, name: &str) -> Option<&SloEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The worst status across objectives (`breaching` dominates).
    pub fn worst(&self) -> SloStatus {
        let mut worst = SloStatus::Ok;
        for e in &self.entries {
            if e.status == SloStatus::Breaching {
                return SloStatus::Breaching;
            }
            if e.status == SloStatus::Warning {
                worst = SloStatus::Warning;
            }
        }
        worst
    }

    /// `{"status":..,"objectives":[{..}]}` — the SLO-status op's JSON
    /// payload.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        crate::json::key(&mut out, "status");
        out.push_str(&format!("\"{}\",", self.worst().as_str()));
        crate::json::key(&mut out, "objectives");
        out.push('[');
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            crate::json::key(&mut out, "name");
            out.push_str(&format!("\"{}\",", crate::json::escape(&e.name)));
            crate::json::key(&mut out, "status");
            out.push_str(&format!("\"{}\",", e.status.as_str()));
            crate::json::key(&mut out, "fast_burn");
            out.push_str(&format!("{:.4},", e.fast_burn));
            crate::json::key(&mut out, "slow_burn");
            out.push_str(&format!("{:.4}", e.slow_burn));
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Human-readable table (the SLO-status op's text payload).
    pub fn to_text(&self) -> String {
        let mut table = Table::new(["objective", "status", "fast_burn", "slow_burn"]);
        for e in &self.entries {
            table.row([
                e.name.clone(),
                e.status.as_str().to_string(),
                format!("{:.2}", e.fast_burn),
                format!("{:.2}", e.slow_burn),
            ]);
        }
        format!("slo: {}\n{}", self.worst().as_str(), table.render())
    }
}

/// Evaluates a fixed set of objectives against windowed snapshots.
pub struct SloEngine {
    objectives: Vec<Objective>,
    burn: BurnConfig,
}

impl SloEngine {
    pub fn new(objectives: Vec<Objective>, burn: BurnConfig) -> SloEngine {
        SloEngine { objectives, burn }
    }

    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Evaluate every objective over the most recent windows (oldest
    /// first, as [`crate::series::SeriesRing::windows`] returns them).
    /// Pure: no state is carried between calls.
    pub fn evaluate(&self, windows: &[Window]) -> SloReport {
        let span = |n: usize| &windows[windows.len().saturating_sub(n)..];
        let entries = self
            .objectives
            .iter()
            .map(|o| {
                let fast_burn = burn_over(span(self.burn.fast_windows), &o.kind);
                let slow_burn = burn_over(span(self.burn.slow_windows), &o.kind);
                let status = match (fast_burn >= 1.0, slow_burn >= 1.0) {
                    (true, true) => SloStatus::Breaching,
                    (false, false) => SloStatus::Ok,
                    _ => SloStatus::Warning,
                };
                SloEntry {
                    name: o.name.clone(),
                    status,
                    fast_burn,
                    slow_burn,
                }
            })
            .collect();
        SloReport { entries }
    }
}

/// measured / objective over one span of windows. No traffic (or no
/// samples) burns nothing.
fn burn_over(windows: &[Window], kind: &SloKind) -> f64 {
    match kind {
        SloKind::RatioBelow {
            bad,
            total,
            max_ratio,
        } => {
            let total: u64 = windows.iter().map(|w| w.delta.counter_value(total)).sum();
            if total == 0 {
                return 0.0;
            }
            let bad: u64 = windows
                .iter()
                .map(|w| {
                    bad.iter()
                        .map(|name| w.delta.counter_value(name))
                        .sum::<u64>()
                })
                .sum();
            (bad as f64 / total as f64) / max_ratio.max(f64::EPSILON)
        }
        SloKind::QuantileBelow { metric, q, max } => {
            let mut merged: Option<HistView> = None;
            for w in windows {
                if let Some(h) = w.delta.hist(metric) {
                    merged = Some(match merged {
                        Some(m) => m.merge(h),
                        None => h.clone(),
                    });
                }
            }
            match merged.and_then(|m| m.quantile(*q)) {
                Some(v) => v as f64 / (*max).max(1) as f64,
                None => 0.0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricValue, Registry, Snapshot};
    use std::time::Duration;

    /// A synthetic one-second window with the given counters.
    fn window(seq: u64, counters: &[(&str, u64)]) -> Window {
        let mut entries: Vec<(String, MetricValue)> = counters
            .iter()
            .map(|(name, v)| ((*name).to_string(), MetricValue::Counter(*v)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Window {
            seq,
            dur: Duration::from_secs(1),
            delta: Snapshot { entries },
        }
    }

    fn engine() -> SloEngine {
        SloEngine::new(
            vec![Objective::ratio_below(
                "error_rate",
                &["errs"],
                "reqs",
                0.1, // 10% ceiling keeps the arithmetic readable
            )],
            BurnConfig {
                fast_windows: 2,
                slow_windows: 4,
            },
        )
    }

    #[test]
    fn burn_rates_cross_fast_then_slow_thresholds() {
        let e = engine();
        // Healthy traffic: 100 reqs/window, no errors.
        let mut windows = vec![
            window(0, &[("reqs", 100), ("errs", 0)]),
            window(1, &[("reqs", 100), ("errs", 0)]),
            window(2, &[("reqs", 100), ("errs", 0)]),
        ];
        let report = e.evaluate(&windows);
        let entry = report.get("error_rate").unwrap();
        assert_eq!(entry.status, SloStatus::Ok);
        assert_eq!(entry.fast_burn, 0.0);
        assert_eq!(report.worst(), SloStatus::Ok);

        // One bad window: 50% errors. Fast span (2 windows): 50/200 =
        // 25% -> burn 2.5 >= 1. Slow span (4 windows): 50/400 = 12.5%
        // -> burn 1.25 >= 1. Both trip at once because the spike is
        // huge relative to the 10% ceiling; status jumps straight to
        // breaching.
        windows.push(window(3, &[("reqs", 100), ("errs", 50)]));
        let entry = e.evaluate(&windows).get("error_rate").cloned().unwrap();
        assert_eq!(entry.status, SloStatus::Breaching);
        assert!((entry.fast_burn - 2.5).abs() < 1e-9, "{entry:?}");
        assert!((entry.slow_burn - 1.25).abs() < 1e-9, "{entry:?}");

        // A milder spike trips only the fast span: 30 errors in the
        // newest window. Fast (2w): 30/200 = 15% -> burn 1.5. Slow
        // (4w): 30/400 = 7.5% -> burn 0.75. Warning, not breaching.
        let mild = vec![
            window(0, &[("reqs", 100), ("errs", 0)]),
            window(1, &[("reqs", 100), ("errs", 0)]),
            window(2, &[("reqs", 100), ("errs", 0)]),
            window(3, &[("reqs", 100), ("errs", 30)]),
        ];
        let entry = e.evaluate(&mild).get("error_rate").cloned().unwrap();
        assert_eq!(entry.status, SloStatus::Warning, "{entry:?}");
        assert!(entry.fast_burn >= 1.0 && entry.slow_burn < 1.0);
    }

    #[test]
    fn recovery_decays_through_warning_before_ok() {
        let e = engine();
        // A sustained breach...
        let mut windows = vec![
            window(0, &[("reqs", 100), ("errs", 60)]),
            window(1, &[("reqs", 100), ("errs", 60)]),
            window(2, &[("reqs", 100), ("errs", 60)]),
            window(3, &[("reqs", 100), ("errs", 60)]),
        ];
        assert_eq!(e.evaluate(&windows).worst(), SloStatus::Breaching);

        // ...then the fault clears. Two clean windows empty the fast
        // span (burn 0) while the slow span still holds two bad
        // windows (120/400 = 30% -> burn 3): warning, the hysteresis
        // leg.
        windows.push(window(4, &[("reqs", 100), ("errs", 0)]));
        windows.push(window(5, &[("reqs", 100), ("errs", 0)]));
        let tail: Vec<Window> = windows[windows.len() - 4..].to_vec();
        let entry = e.evaluate(&tail).get("error_rate").cloned().unwrap();
        assert_eq!(entry.status, SloStatus::Warning, "{entry:?}");
        assert_eq!(entry.fast_burn, 0.0);
        assert!(entry.slow_burn >= 1.0);

        // Four clean windows flush the slow span too: ok.
        let clean = vec![
            window(6, &[("reqs", 100), ("errs", 0)]),
            window(7, &[("reqs", 100), ("errs", 0)]),
            window(8, &[("reqs", 100), ("errs", 0)]),
            window(9, &[("reqs", 100), ("errs", 0)]),
        ];
        assert_eq!(e.evaluate(&clean).worst(), SloStatus::Ok);
    }

    #[test]
    fn quantile_objectives_merge_windows_and_idle_burns_nothing() {
        let e = SloEngine::new(
            vec![Objective::quantile_below("p99", "lat_us", 0.99, 1_000)],
            BurnConfig {
                fast_windows: 1,
                slow_windows: 2,
            },
        );
        // No windows / no samples: burn 0, ok.
        assert_eq!(e.evaluate(&[]).worst(), SloStatus::Ok);
        assert_eq!(e.evaluate(&[window(0, &[])]).worst(), SloStatus::Ok);

        // Two windows whose merged p99 lands around 4000 µs: burn ~4.
        let reg = Registry::new();
        let h = reg.histogram("lat_us");
        let base = reg.snapshot();
        for _ in 0..99 {
            h.record(100);
        }
        let w1 = Window {
            seq: 0,
            dur: Duration::from_secs(1),
            delta: reg.snapshot().delta(&base),
        };
        let base = reg.snapshot();
        for _ in 0..99 {
            h.record(4_000);
        }
        let w2 = Window {
            seq: 1,
            dur: Duration::from_secs(1),
            delta: reg.snapshot().delta(&base),
        };
        let windows = [w1, w2];
        let entry = e.evaluate(&windows).get("p99").cloned().unwrap();
        // Fast span = newest window only (all 4 ms): breach there; the
        // slow span merges both windows and its p99 is still ~4 ms.
        assert_eq!(entry.status, SloStatus::Breaching, "{entry:?}");
        assert!(entry.fast_burn >= 3.0, "{entry:?}");
        assert!(entry.slow_burn >= 3.0, "{entry:?}");
        let json = e.evaluate(&windows).to_json();
        assert!(json.contains("\"status\":\"breaching\""), "{json}");
        assert!(json.contains("\"name\":\"p99\""), "{json}");
        let text = e.evaluate(&windows).to_text();
        assert!(text.contains("breaching"), "{text}");
    }

    #[test]
    fn default_objective_sets_name_the_tier_metrics() {
        for (defaults, prefix) in [
            (Objective::server_defaults(), "serve."),
            (Objective::gateway_defaults(), "gateway."),
        ] {
            assert_eq!(defaults.len(), 3);
            for o in &defaults {
                match &o.kind {
                    SloKind::QuantileBelow { metric, .. } => {
                        assert!(metric.starts_with(prefix), "{metric}");
                    }
                    SloKind::RatioBelow { bad, total, .. } => {
                        assert!(total.starts_with(prefix), "{total}");
                        assert!(bad.iter().all(|b| b.starts_with(prefix)));
                    }
                }
            }
        }
    }
}
