//! Plain-text table rendering, shared by `mgard-cli stats`,
//! `tenant-stats`, and `metrics` so every human-readable report looks
//! the same.

/// A simple aligned-column table. Numeric-looking cells are
/// right-aligned, everything else left-aligned.
#[derive(Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn is_numeric(cell: &str) -> bool {
    !cell.is_empty()
        && cell
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | '%' | 'e'))
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (short rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Table {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Render with a header underline and two-space column gaps.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in [&self.headers].into_iter().chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let push_row = |cells: &[String], out: &mut String| {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = width.saturating_sub(cell.chars().count());
                if is_numeric(cell) {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(cell);
                } else if i + 1 == widths.len() {
                    out.push_str(cell); // no trailing padding
                } else {
                    out.push_str(cell);
                    out.push_str(&" ".repeat(pad));
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        push_row(&self.headers, &mut out);
        let underline: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        push_row(&underline, &mut out);
        for row in &self.rows {
            push_row(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["tenant", "requests", "shed"]);
        t.row(["", "120", "3"]);
        t.row(["team-analytics", "7", "0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("tenant"));
        assert!(lines[1].starts_with("--------------"), "underline: {s}");
        // Numbers right-aligned under their header.
        let req_col = lines[0].find("requests").unwrap();
        assert_eq!(
            lines[2].find("120").unwrap(),
            req_col + "requests".len() - 3
        );
        assert!(lines[3].contains("team-analytics"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only"]);
        assert!(t.render().contains("only"));
    }
}
