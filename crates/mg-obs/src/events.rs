//! Bounded structured event log: the "when did that happen" half of
//! the observability layer.
//!
//! Counters say *how often* a breaker opened; the event log says
//! *when*, to *which* backend, and — via the optional trace-id
//! correlation — *which request* to look at. Producers record typed
//! events at their existing transition points (breaker flips, degrade
//! level changes, dataset re-registration, SLO breach/recover); the
//! log keeps the most recent `cap` of them in a ring, timestamped
//! against the log's creation instant so dumps are stable across
//! machines with different wall clocks.

use crate::trace::TraceId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (unique within one log, never reused
    /// even after the ring evicts the event).
    pub seq: u64,
    /// Milliseconds since the log was created.
    pub at_ms: u64,
    /// Event kind, from the fixed taxonomy: `breaker_open`,
    /// `breaker_half_open`, `breaker_close`, `degrade`,
    /// `dataset_reregistered`, `slo_breach`, `slo_recover`.
    pub kind: &'static str,
    /// Human-readable detail (backend address, tenant, objective, ...).
    pub detail: String,
    /// Correlated trace exemplar, when one was available — resolvable
    /// against the tier's trace ring.
    pub trace: Option<TraceId>,
}

impl Event {
    /// This event as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        crate::json::key(&mut out, "seq");
        out.push_str(&format!("{},", self.seq));
        crate::json::key(&mut out, "at_ms");
        out.push_str(&format!("{},", self.at_ms));
        crate::json::key(&mut out, "kind");
        out.push_str(&format!("\"{}\",", crate::json::escape(self.kind)));
        crate::json::key(&mut out, "detail");
        out.push_str(&format!("\"{}\"", crate::json::escape(&self.detail)));
        if let Some(id) = self.trace {
            out.push(',');
            crate::json::key(&mut out, "trace");
            out.push_str(&format!("\"{}\"", id.to_hex()));
        }
        out.push('}');
        out
    }

    /// One human-readable line (`+12.345s kind detail [trace=..]`).
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "+{:>9.3}s {:<20} {}",
            self.at_ms as f64 / 1e3,
            self.kind,
            self.detail
        );
        if let Some(id) = self.trace {
            line.push_str(&format!(" trace={}", id.to_hex()));
        }
        line
    }
}

/// A bounded ring of [`Event`]s, safe to record into from any thread.
pub struct EventLog {
    epoch: Instant,
    cap: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl EventLog {
    /// A log keeping the most recent `cap` events.
    pub fn new(cap: usize) -> EventLog {
        EventLog {
            epoch: Instant::now(),
            cap: cap.max(1),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Record one event; evicts the oldest when the ring is full.
    pub fn record(&self, kind: &'static str, detail: impl Into<String>, trace: Option<TraceId>) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            at_ms: self.epoch.elapsed().as_millis() as u64,
            kind,
            detail: detail.into(),
            trace,
        };
        let mut ring = self.ring.lock().expect("event log lock");
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Events currently stored.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("event log lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent `max` events, oldest first (copied out under the
    /// lock; rendering happens lock-free).
    pub fn recent(&self, max: usize) -> Vec<Event> {
        let ring = self.ring.lock().expect("event log lock");
        ring.iter().rev().take(max).rev().cloned().collect()
    }

    /// The most recent `max` events as a JSON array (the event-dump
    /// op's payload), oldest first.
    pub fn to_json(&self, max: usize) -> String {
        let events = self.recent(max);
        let mut out = String::from("[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push(']');
        out
    }

    /// The most recent `max` events as text lines, oldest first.
    pub fn to_text(&self, max: usize) -> String {
        let mut out = String::new();
        for e in self.recent(max) {
            out.push_str(&e.to_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let log = EventLog::new(3);
        assert!(log.is_empty());
        for i in 0..5 {
            log.record("breaker_open", format!("backend-{i}"), None);
        }
        let recent = log.recent(10);
        assert_eq!(log.len(), 3);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].detail, "backend-2", "oldest two evicted");
        assert_eq!(recent[2].detail, "backend-4");
        // Sequence numbers survive eviction (never reused).
        assert_eq!(recent[2].seq, 4);
        // `recent(max)` returns the newest `max`, oldest first.
        let last_two = log.recent(2);
        assert_eq!(last_two.len(), 2);
        assert_eq!(last_two[0].detail, "backend-3");
    }

    #[test]
    fn json_and_text_render_kind_detail_and_trace() {
        let log = EventLog::new(8);
        let id = TraceId::generate();
        log.record("slo_breach", "error_rate fast=12.0 slow=3.4", Some(id));
        log.record("breaker_close", "127.0.0.1:9999", None);
        let json = log.to_json(8);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"kind\":\"slo_breach\""), "{json}");
        assert!(
            json.contains(&format!("\"trace\":\"{}\"", id.to_hex())),
            "{json}"
        );
        assert!(!json.contains("\"trace\":\"\""), "no empty trace field");
        let text = log.to_text(8);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("slo_breach"));
        assert!(text.contains(&format!("trace={}", id.to_hex())));
        // A capped dump keeps the newest.
        let one = log.to_json(1);
        assert!(one.contains("breaker_close") && !one.contains("slo_breach"));
    }
}
