//! Fixed-cadence windowed time-series: the "what is happening *now*"
//! layer on top of cumulative snapshots.
//!
//! A sampler thread calls [`SeriesRing::tick`] (via [`Monitor::tick`])
//! once per cadence with a fresh registry [`Snapshot`]; the ring
//! stores the [`Snapshot::delta`] against the previous tick as a
//! [`Window`]. Because counter deltas are clamped at zero, a restarted
//! or regressed baseline yields an empty window rather than a garbage
//! spike. Retained windows answer the questions cumulative counters
//! cannot: per-window rates (req/s, bytes/s), moving quantiles over
//! the last N windows (merged `HistView`s), and "did the last minute
//! look like the last five".

use crate::events::EventLog;
use crate::metrics::{HistView, Registry, Snapshot};
use crate::slo::{SloEngine, SloReport, SloStatus};
use crate::trace::TraceId;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One sampler tick: everything recorded during it, as deltas.
#[derive(Clone, Debug)]
pub struct Window {
    /// Tick number since the ring was created (monotonic, survives
    /// eviction).
    pub seq: u64,
    /// Measured wall time the window actually covers (close to the
    /// configured cadence, but the sampler reports what it saw).
    pub dur: Duration,
    /// Registry delta over the window: counters are per-window
    /// increments, histograms per-window `HistView`s.
    pub delta: Snapshot,
}

impl Window {
    /// Per-second rate of counter `name` over this window.
    pub fn rate(&self, name: &str) -> f64 {
        let secs = self.dur.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.delta.counter_value(name) as f64 / secs
        }
    }
}

struct SeriesInner {
    last: Option<Snapshot>,
    windows: VecDeque<Window>,
    seq: u64,
}

/// A bounded ring of [`Window`]s at a fixed cadence.
pub struct SeriesRing {
    cap: usize,
    inner: Mutex<SeriesInner>,
}

impl SeriesRing {
    /// A ring retaining the most recent `retention` windows.
    pub fn new(retention: usize) -> SeriesRing {
        SeriesRing {
            cap: retention.max(1),
            inner: Mutex::new(SeriesInner {
                // Baseline starts empty, so the first window covers
                // everything recorded since the ring was created — as
                // long as nothing has been evicted, the windows sum
                // exactly to the cumulative counters.
                last: Some(Snapshot {
                    entries: Vec::new(),
                }),
                windows: VecDeque::new(),
                seq: 0,
            }),
        }
    }

    /// Store one tick: appends `snap - previous tick` as a window.
    pub fn tick(&self, snap: Snapshot, elapsed: Duration) {
        let mut inner = self.inner.lock().expect("series ring lock");
        if let Some(last) = inner.last.take() {
            let window = Window {
                seq: inner.seq,
                dur: elapsed,
                delta: snap.delta(&last),
            };
            inner.seq += 1;
            if inner.windows.len() == self.cap {
                inner.windows.pop_front();
            }
            inner.windows.push_back(window);
        }
        inner.last = Some(snap);
    }

    /// Retained windows, oldest first.
    pub fn windows(&self) -> Vec<Window> {
        let inner = self.inner.lock().expect("series ring lock");
        inner.windows.iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("series ring lock").windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of counter `name`'s deltas across every retained window —
    /// equal to the cumulative counter's growth over the retained
    /// span.
    pub fn sum_counter(&self, name: &str) -> u64 {
        self.windows()
            .iter()
            .map(|w| w.delta.counter_value(name))
            .sum()
    }

    /// Histogram `name` merged over the newest `n` windows (a moving
    /// quantile source), if any window recorded it.
    pub fn merged_hist(&self, name: &str, n: usize) -> Option<HistView> {
        let windows = self.windows();
        let tail = &windows[windows.len().saturating_sub(n)..];
        let mut merged: Option<HistView> = None;
        for w in tail {
            if let Some(h) = w.delta.hist(name) {
                merged = Some(match merged {
                    Some(m) => m.merge(h),
                    None => h.clone(),
                });
            }
        }
        merged
    }

    /// `{"windows":[{"seq":..,"dur_ms":..,"delta":{..}},..]}` — the
    /// windowed-metrics op's payload, oldest window first.
    pub fn to_json(&self) -> String {
        let windows = self.windows();
        let mut out = String::from("{");
        crate::json::key(&mut out, "windows");
        out.push('[');
        for (i, w) in windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            crate::json::key(&mut out, "seq");
            out.push_str(&format!("{},", w.seq));
            crate::json::key(&mut out, "dur_ms");
            out.push_str(&format!("{:.3},", w.dur.as_secs_f64() * 1e3));
            crate::json::key(&mut out, "delta");
            out.push_str(&w.delta.to_json());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// The per-tier continuous-monitoring core: one sampler tick snapshots
/// the registry into the series ring, re-evaluates the SLO engine over
/// the retained windows, and records breach/recover transitions into
/// the event log (tagged with the most recent sampled trace id as an
/// exemplar, when one exists).
pub struct Monitor {
    registry: Registry,
    ring: SeriesRing,
    engine: SloEngine,
    events: Arc<EventLog>,
    /// Last observed status per objective, for edge detection.
    last: Mutex<Vec<(String, SloStatus)>>,
}

impl Monitor {
    pub fn new(
        registry: Registry,
        retention: usize,
        engine: SloEngine,
        events: Arc<EventLog>,
    ) -> Monitor {
        Monitor {
            registry,
            ring: SeriesRing::new(retention),
            engine,
            events,
            last: Mutex::new(Vec::new()),
        }
    }

    pub fn ring(&self) -> &SeriesRing {
        &self.ring
    }

    pub fn events(&self) -> &Arc<EventLog> {
        &self.events
    }

    /// One sampler tick: ingest a window, re-evaluate the SLOs, and
    /// emit `slo_breach` when an objective *enters* breaching and
    /// `slo_recover` when it *leaves* (both carrying `exemplar`).
    pub fn tick(&self, elapsed: Duration, exemplar: Option<TraceId>) -> SloReport {
        self.ring.tick(self.registry.snapshot(), elapsed);
        let report = self.engine.evaluate(&self.ring.windows());
        let mut last = self.last.lock().expect("slo status lock");
        for entry in &report.entries {
            let prev = last
                .iter()
                .find(|(name, _)| name == &entry.name)
                .map(|(_, s)| *s)
                .unwrap_or(SloStatus::Ok);
            let breaching = entry.status == SloStatus::Breaching;
            if breaching && prev != SloStatus::Breaching {
                self.events.record(
                    "slo_breach",
                    format!(
                        "{} fast={:.2} slow={:.2}",
                        entry.name, entry.fast_burn, entry.slow_burn
                    ),
                    exemplar,
                );
            } else if !breaching && prev == SloStatus::Breaching {
                self.events.record(
                    "slo_recover",
                    format!(
                        "{} fast={:.2} slow={:.2}",
                        entry.name, entry.fast_burn, entry.slow_burn
                    ),
                    exemplar,
                );
            }
        }
        *last = report
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.status))
            .collect();
        report
    }

    /// Current SLO evaluation without ingesting a window or emitting
    /// events (the wire op's read path).
    pub fn slo_report(&self) -> SloReport {
        self.engine.evaluate(&self.ring.windows())
    }

    /// The windowed-metrics op's JSON payload.
    pub fn series_json(&self) -> String {
        self.ring.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::{BurnConfig, Objective};

    fn tick_secs(ring: &SeriesRing, snap: Snapshot) {
        ring.tick(snap, Duration::from_secs(1));
    }

    #[test]
    fn windows_hold_deltas_and_sum_to_the_cumulative_counter() {
        let reg = Registry::new();
        let reqs = reg.counter("reqs");
        let ring = SeriesRing::new(4);

        // The first window covers everything since the ring was made.
        reqs.add(2);
        tick_secs(&ring, reg.snapshot());
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.windows()[0].delta.counter_value("reqs"), 2);

        for add in [3u64, 5, 7] {
            reqs.add(add);
            tick_secs(&ring, reg.snapshot());
        }
        let windows = ring.windows();
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[1].delta.counter_value("reqs"), 3);
        assert_eq!(windows[3].delta.counter_value("reqs"), 7);
        assert_eq!(windows[3].seq, 3);
        assert!((windows[1].rate("reqs") - 3.0).abs() < 1e-9);
        // All windows retained => sum equals the cumulative counter.
        assert_eq!(ring.sum_counter("reqs"), reqs.get());

        // One more tick evicts the oldest window (the 2).
        reqs.add(11);
        tick_secs(&ring, reg.snapshot());
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.sum_counter("reqs"), 3 + 5 + 7 + 11);

        let json = ring.to_json();
        assert!(json.starts_with("{\"windows\":["), "{json}");
        assert!(json.contains("\"dur_ms\":1000.000"), "{json}");
    }

    #[test]
    fn merged_hist_gives_moving_quantiles() {
        let reg = Registry::new();
        let lat = reg.histogram("lat_us");
        let ring = SeriesRing::new(8);
        tick_secs(&ring, reg.snapshot());
        for _ in 0..100 {
            lat.record(100);
        }
        tick_secs(&ring, reg.snapshot());
        for _ in 0..100 {
            lat.record(9_000);
        }
        tick_secs(&ring, reg.snapshot());

        // Newest window only: all samples are slow.
        let newest = ring.merged_hist("lat_us", 1).unwrap();
        assert_eq!(newest.count, 100);
        assert!(newest.quantile(0.5).unwrap() >= 9_000);
        // Both windows: the median sits at the fast mode's edge.
        let both = ring.merged_hist("lat_us", 2).unwrap();
        assert_eq!(both.count, 200);
        assert!(both.quantile(0.5).unwrap() < 9_000);
        assert!(ring.merged_hist("missing", 2).is_none());
    }

    #[test]
    fn monitor_emits_breach_and_recover_events_with_exemplars() {
        let reg = Registry::new();
        let reqs = reg.counter("reqs");
        let errs = reg.counter("errs");
        let engine = SloEngine::new(
            vec![Objective::ratio_below("error_rate", &["errs"], "reqs", 0.1)],
            BurnConfig {
                fast_windows: 1,
                slow_windows: 2,
            },
        );
        let events = Arc::new(EventLog::new(16));
        let monitor = Monitor::new(reg, 8, engine, events.clone());
        let id = TraceId::generate();

        // An idle window then a healthy window: ok, no events.
        monitor.tick(Duration::from_secs(1), None);
        reqs.add(100);
        let report = monitor.tick(Duration::from_secs(1), None);
        assert_eq!(report.worst(), SloStatus::Ok);
        assert!(events.is_empty());

        // Two bad windows push both spans over: exactly one breach
        // event, carrying the exemplar.
        reqs.add(100);
        errs.add(60);
        monitor.tick(Duration::from_secs(1), Some(id));
        reqs.add(100);
        errs.add(60);
        let report = monitor.tick(Duration::from_secs(1), Some(id));
        assert_eq!(report.worst(), SloStatus::Breaching);
        let breaches = events.recent(16);
        assert_eq!(breaches.len(), 1, "{breaches:?}");
        assert_eq!(breaches[0].kind, "slo_breach");
        assert!(breaches[0].detail.starts_with("error_rate"));
        assert_eq!(breaches[0].trace, Some(id));

        // Still breaching next tick: no duplicate event.
        reqs.add(100);
        errs.add(60);
        monitor.tick(Duration::from_secs(1), Some(id));
        assert_eq!(events.len(), 1);

        // A clean window empties the fast span: leaves breaching
        // (warning), which records the recover event once.
        reqs.add(100);
        let report = monitor.tick(Duration::from_secs(1), Some(id));
        assert_eq!(report.worst(), SloStatus::Warning);
        let all = events.recent(16);
        assert_eq!(all.len(), 2, "{all:?}");
        assert_eq!(all[1].kind, "slo_recover");
        assert_eq!(all[1].trace, Some(id));

        // Another clean window reaches ok without a second event.
        reqs.add(100);
        let report = monitor.tick(Duration::from_secs(1), Some(id));
        assert_eq!(report.worst(), SloStatus::Ok);
        assert_eq!(events.len(), 2);

        // The read-side renders stay available throughout.
        assert!(monitor.series_json().starts_with("{\"windows\":["));
        assert!(monitor.slo_report().to_json().contains("error_rate"));
    }
}
