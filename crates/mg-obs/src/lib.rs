//! Std-only observability layer for the serving stack.
//!
//! The serving tiers (mg-serve, mg-gateway) grew deadline budgets,
//! hedged fetches, circuit breakers, and fidelity-degrading QoS — but
//! until this crate their only introspection was flat counters and a
//! coarse mean latency. `mg-obs` adds the two missing primitives,
//! vendored with zero dependencies because the build environment is
//! offline:
//!
//! * [`metrics`] — a [`Registry`] of typed counters, gauges, and
//!   log-linear (HDR-style) histograms with sharded lock-free-ish
//!   recording, exact-bucket quantile queries (p50/p90/p99/p99.9), and
//!   snapshot/delta export as JSON and a stable text format;
//! * [`trace`] — 16-byte trace ids and per-request span trees recording
//!   where each stage of a fetch spent its time, with a bounded
//!   in-memory ring of recent sampled traces (head sampling at a
//!   configurable rate, always-sample on error / deadline-exceeded /
//!   hedge-win);
//! * [`table`] — the plain-text table formatter shared by
//!   `mgard-cli stats`, `tenant-stats`, and `metrics`;
//! * [`series`] — a fixed-cadence ring of per-tick [`Snapshot`] deltas
//!   ([`Window`]s) giving windowed rates and moving quantiles, plus the
//!   [`Monitor`] that drives each tier's sampler tick;
//! * [`slo`] — declarative objectives evaluated with fast/slow
//!   multi-window burn rates into a typed ok/warning/breaching
//!   [`SloStatus`];
//! * [`events`] — a bounded structured [`EventLog`] of operational
//!   transitions (breaker flips, degrade changes, dataset
//!   re-registration, SLO breach/recover) with trace-id correlation.
//!
//! A histogram record is a handful of relaxed atomic ops (no locks, no
//! allocation); a span record is two `Instant` reads and a push into a
//! per-request vector. Both are cheap enough to stay on by default —
//! `bench_serve --obs-gate` pins the metrics hot path under 2% of the
//! cached-fetch latency.

pub mod events;
pub mod json;
pub mod metrics;
pub mod series;
pub mod slo;
pub mod table;
pub mod trace;

pub use events::{Event, EventLog};
pub use metrics::{
    global, Bucket, Counter, Gauge, HistView, Histogram, MetricValue, Registry, Snapshot,
};
pub use series::{Monitor, SeriesRing, Window};
pub use slo::{BurnConfig, Objective, SloEngine, SloEntry, SloKind, SloReport, SloStatus};
pub use table::Table;
pub use trace::{SpanRecord, Trace, TraceCtx, TraceId, Tracer, WireTrace};
