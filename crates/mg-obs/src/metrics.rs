//! Typed metrics: counters, gauges, and log-linear histograms behind a
//! name-keyed [`Registry`].
//!
//! The histogram is the HDR idea at fixed precision: values below 16
//! get exact unit buckets; every octave above is split into 16 linear
//! sub-buckets, so a bucket is never wider than 1/16 (6.25%) of its
//! value and a quantile read from bucket edges is off by at most one
//! bucket width. Recording is a few relaxed atomic adds into one of a
//! small set of shards (threads are striped across shards, so
//! concurrent recorders rarely share a cache line); reads merge the
//! shards. There is no lock anywhere on the record path.

use crate::trace::TraceId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Linear sub-buckets per octave (and the exact-bucket span at the
/// bottom of the range).
const SUB: usize = 16;
/// Total bucket count: 16 exact unit buckets + 16 per octave for
/// exponents 4..=63.
const NBUCKETS: usize = SUB + SUB * 60;
/// Record shards. Threads are striped round-robin; more shards buy
/// less contention at the price of memory per histogram.
const NSHARDS: usize = 4;

/// Bucket index of a value.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize;
    SUB * (exp - 3) + ((v >> (exp - 4)) & (SUB as u64 - 1)) as usize
}

/// Inclusive lower bound of a bucket.
fn bucket_lo(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let exp = idx / SUB + 3;
    let m = (idx % SUB) as u64;
    (SUB as u64 + m) << (exp - 4)
}

/// Inclusive upper bound of a bucket.
fn bucket_hi(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let exp = idx / SUB + 3;
    // The very top bucket ends at u64::MAX; saturate instead of
    // wrapping past it.
    (bucket_lo(idx) - 1).saturating_add(1u64 << (exp - 4))
}

/// Octave index of a value: 0 for the exact sub-16 region, then one
/// per power of two above (1..=60). Exemplars are kept per octave, not
/// per bucket, so the storage stays tiny.
fn octave_index(v: u64) -> usize {
    if v < SUB as u64 {
        0
    } else {
        (63 - v.leading_zeros() as usize) - 3
    }
}

/// Inclusive lower bound of an octave.
fn octave_lo(o: usize) -> u64 {
    if o == 0 {
        0
    } else {
        (SUB as u64) << (o - 1)
    }
}

struct Shard {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }
}

struct HistogramInner {
    shards: Vec<Shard>,
    max: AtomicU64,
    min: AtomicU64,
    /// Most recent sampled trace id per octave — the metric→trace link.
    /// Only written for requests that carry a sampled trace, so the
    /// plain record path never touches this lock.
    exemplars: Mutex<BTreeMap<usize, TraceId>>,
}

/// A log-linear latency/size histogram handle. Cloning shares the
/// underlying buckets.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    IDX.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v % NSHARDS
    })
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (standalone use; registry users call
    /// [`Registry::histogram`]).
    pub fn new() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                shards: (0..NSHARDS).map(|_| Shard::new()).collect(),
                max: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                exemplars: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Record one value. Lock-free: a bucket increment and a sum add on
    /// this thread's shard, plus min/max maintenance.
    pub fn record(&self, v: u64) {
        let shard = &self.inner.shards[shard_index()];
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
        self.inner.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Record a duration in microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// [`Histogram::record`] with an optional trace-id exemplar: when
    /// the request carrying `v` has a sampled trace, its id becomes the
    /// octave's most recent exemplar, linking a histogram tail (the
    /// p999 bucket, say) back to a stored trace. Untraced calls take
    /// the plain lock-free path.
    pub fn record_traced(&self, v: u64, trace: Option<TraceId>) {
        self.record(v);
        if let Some(id) = trace {
            self.inner
                .exemplars
                .lock()
                .expect("exemplar lock")
                .insert(octave_index(v), id);
        }
    }

    /// [`Histogram::record_duration`] with an optional exemplar.
    pub fn record_duration_traced(&self, d: Duration, trace: Option<TraceId>) {
        self.record_traced(d.as_micros().min(u64::MAX as u128) as u64, trace);
    }

    /// Total recorded values (merged over shards).
    pub fn count(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Quantile `q` in `[0, 1]`: the inclusive upper bound of the
    /// bucket holding the rank-`ceil(q·count)` value, so the answer is
    /// within one bucket width (≤ 6.25% relative) of the exact
    /// quantile. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }

    /// Merged point-in-time view of the histogram.
    pub fn snapshot(&self) -> HistView {
        let mut counts = vec![0u64; NBUCKETS];
        let mut sum = 0u64;
        for shard in &self.inner.shards {
            for (acc, b) in counts.iter_mut().zip(shard.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        let count: u64 = counts.iter().sum();
        let min = self.inner.min.load(Ordering::Relaxed);
        let exemplars = self
            .inner
            .exemplars
            .lock()
            .expect("exemplar lock")
            .iter()
            .map(|(&o, &id)| (octave_lo(o), id))
            .collect();
        HistView {
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max: self.inner.max.load(Ordering::Relaxed),
            buckets: counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| Bucket {
                    lo: bucket_lo(i),
                    hi: bucket_hi(i),
                    count: c,
                })
                .collect(),
            exemplars,
        }
    }
}

/// One non-empty histogram bucket: inclusive `[lo, hi]` value range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bucket {
    pub lo: u64,
    pub hi: u64,
    pub count: u64,
}

/// Merged, immutable view of a histogram (only non-empty buckets).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistView {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<Bucket>,
    /// `(octave lower bound, trace id)` — the most recent sampled trace
    /// recorded into each octave, sorted by octave.
    pub exemplars: Vec<(u64, TraceId)>,
}

impl HistView {
    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return Some(b.hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Mean of the recorded values (exact: tracked as a running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The view of the union of two recording streams.
    pub fn merge(&self, other: &HistView) -> HistView {
        let mut by_lo: BTreeMap<u64, Bucket> = BTreeMap::new();
        for b in self.buckets.iter().chain(other.buckets.iter()) {
            by_lo
                .entry(b.lo)
                .and_modify(|e| e.count += b.count)
                .or_insert(*b);
        }
        let count = self.count + other.count;
        let mut exemplars: BTreeMap<u64, TraceId> = self.exemplars.iter().copied().collect();
        exemplars.extend(other.exemplars.iter().copied());
        HistView {
            count,
            sum: self.sum.wrapping_add(other.sum),
            min: match (self.count, other.count) {
                (0, _) => other.min,
                (_, 0) => self.min,
                _ => self.min.min(other.min),
            },
            max: self.max.max(other.max),
            buckets: by_lo.into_values().collect(),
            exemplars: exemplars.into_iter().collect(),
        }
    }

    /// Everything recorded since `baseline` was taken (per-bucket
    /// saturating subtraction; min/max and exemplars are kept from
    /// `self` since they cannot be un-merged). A *regressed* baseline —
    /// one with bucket counts or a sum larger than `self`, as happens
    /// when the recording instance restarted between the two snapshots
    /// — clamps to zero instead of underflowing, so a sampler thread
    /// computing deltas every tick survives a restart with one empty
    /// window rather than a garbage one.
    pub fn delta(&self, baseline: &HistView) -> HistView {
        let base: BTreeMap<u64, u64> = baseline.buckets.iter().map(|b| (b.lo, b.count)).collect();
        let buckets: Vec<Bucket> = self
            .buckets
            .iter()
            .filter_map(|b| {
                let c = b
                    .count
                    .saturating_sub(base.get(&b.lo).copied().unwrap_or(0));
                (c > 0).then_some(Bucket { count: c, ..*b })
            })
            .collect();
        HistView {
            count: buckets.iter().map(|b| b.count).sum(),
            sum: self.sum.saturating_sub(baseline.sum),
            min: self.min,
            max: self.max,
            buckets,
            exemplars: self.exemplars.clone(),
        }
    }

    /// The JSON object rendering of this view — the same shape a
    /// registry [`Snapshot::to_json`] uses for histogram values
    /// (`count`/`sum`/`min`/`max`/`p50`/`p90`/`p99`/`p999` plus the
    /// non-empty `buckets`). The benches embed these objects directly
    /// in their `BENCH_*.json` rows.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.push_json(&mut out);
        out
    }

    fn push_json(&self, out: &mut String) {
        out.push('{');
        for (k, v) in [
            ("count", self.count),
            ("sum", self.sum),
            ("min", self.min),
            ("max", self.max),
        ] {
            crate::json::key(out, k);
            out.push_str(&v.to_string());
            out.push(',');
        }
        for (k, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)] {
            crate::json::key(out, k);
            out.push_str(&self.quantile(q).unwrap_or(0).to_string());
            out.push(',');
        }
        crate::json::key(out, "buckets");
        out.push('[');
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{},{}]", b.lo, b.hi, b.count));
        }
        out.push(']');
        if !self.exemplars.is_empty() {
            out.push(',');
            crate::json::key(out, "exemplars");
            out.push('{');
            for (i, (lo, id)) in self.exemplars.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                crate::json::key(out, &lo.to_string());
                out.push_str(&format!("\"{}\"", id.to_hex()));
            }
            out.push('}');
        }
        out.push('}');
    }

    fn text_line(&self) -> String {
        format!(
            "count={} sum={} min={} max={} p50={} p90={} p99={} p999={}",
            self.count,
            self.sum,
            self.min,
            self.max,
            self.quantile(0.50).unwrap_or(0),
            self.quantile(0.90).unwrap_or(0),
            self.quantile(0.99).unwrap_or(0),
            self.quantile(0.999).unwrap_or(0),
        )
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed point-in-time gauge handle.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A name-keyed registry of metrics. Handles are created on first use
/// and shared afterwards; snapshots walk every registered metric in
/// name order. Like the metric handles themselves, a `Registry` is an
/// Arc-backed handle: clones share the same metric set, so one registry
/// can back several components of a tier (e.g. a gateway and its
/// router).
#[derive(Default, Clone)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-create the counter `name`. Panics if `name` is already
    /// registered as a different metric type (a wiring bug).
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().expect("registry lock");
        Snapshot {
            entries: m
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// The process-global registry (benches and ad-hoc tools; the serving
/// tiers carry their own per-instance registries).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One snapshotted metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistView),
}

/// A point-in-time export of a [`Registry`], name-sorted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Look up one entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The value of counter `name` (0 when absent or not a counter).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// The histogram view `name`, when present.
    pub fn hist(&self, name: &str) -> Option<&HistView> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// What changed since `baseline`: counters and histogram buckets
    /// subtract, gauges report their current value.
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .map(|(name, v)| {
                    let dv = match (v, baseline.get(name)) {
                        (MetricValue::Counter(c), Some(MetricValue::Counter(b))) => {
                            MetricValue::Counter(c.saturating_sub(*b))
                        }
                        (MetricValue::Histogram(h), Some(MetricValue::Histogram(b))) => {
                            MetricValue::Histogram(h.delta(b))
                        }
                        (v, _) => v.clone(),
                    };
                    (name.clone(), dv)
                })
                .collect(),
        }
    }

    /// JSON object keyed by metric name; histograms carry count/sum/
    /// min/max, the standard quantiles, and their non-empty buckets as
    /// `[lo, hi, count]` triples.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        for (i, (name, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::key(&mut out, name);
            match v {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Gauge(g) => out.push_str(&g.to_string()),
                MetricValue::Histogram(h) => h.push_json(&mut out),
            }
        }
        out.push('}');
        out
    }

    /// The stable text format: one `kind name values` line per metric,
    /// name-sorted. Parsers may rely on the first two whitespace-split
    /// fields and on `key=value` pairs after them for histograms.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.entries {
            match v {
                MetricValue::Counter(c) => out.push_str(&format!("counter {name} {c}\n")),
                MetricValue::Gauge(g) => out.push_str(&format!("gauge {name} {g}\n")),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("hist {name} {}\n", h.text_line()))
                }
            }
        }
        out
    }

    /// Rebuild a snapshot from the stable text format emitted by
    /// [`Snapshot::to_text`] — the inverse the CLI uses to compute
    /// deltas between polls of a remote metrics endpoint. Histogram
    /// lines carry only the summary fields, so the rebuilt view
    /// quantizes the printed quantile edges back onto the canonical
    /// bucket grid: its `quantile` reads reproduce the printed values.
    /// (Bucket-wise `delta` between two *parsed* views is approximate —
    /// the synthetic buckets move with the quantiles — so rate displays
    /// should subtract the `count`/`sum` fields directly.) Unparseable
    /// lines are skipped.
    pub fn parse_text(text: &str) -> Snapshot {
        let mut entries: Vec<(String, MetricValue)> = Vec::new();
        for line in text.lines() {
            let mut it = line.split_whitespace();
            let (Some(kind), Some(name)) = (it.next(), it.next()) else {
                continue;
            };
            let value = match kind {
                "counter" => it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(MetricValue::Counter),
                "gauge" => it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(MetricValue::Gauge),
                "hist" => parse_hist_line(it).map(MetricValue::Histogram),
                _ => None,
            };
            if let Some(v) = value {
                entries.push((name.to_string(), v));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { entries }
    }
}

/// Rebuild an approximate [`HistView`] from a text `hist` line's
/// `key=value` fields. The printed quantiles are genuine bucket upper
/// bounds, so placing the implied ranks back into the canonical bucket
/// grid recovers the buckets those quantiles came from.
fn parse_hist_line<'a>(fields: impl Iterator<Item = &'a str>) -> Option<HistView> {
    let mut kv: BTreeMap<&str, u64> = BTreeMap::new();
    for f in fields {
        if let Some((k, v)) = f.split_once('=') {
            if let Ok(v) = v.parse() {
                kv.insert(k, v);
            }
        }
    }
    let count = *kv.get("count")?;
    let max = kv.get("max").copied().unwrap_or(0);
    if count == 0 {
        return Some(HistView::default());
    }
    let rank = |q: f64| (((q * count as f64).ceil() as u64).max(1)).min(count);
    let marks = [
        (kv.get("p50").copied().unwrap_or(max), rank(0.5)),
        (kv.get("p90").copied().unwrap_or(max), rank(0.9)),
        (kv.get("p99").copied().unwrap_or(max), rank(0.99)),
        (kv.get("p999").copied().unwrap_or(max), rank(0.999)),
        (max, count),
    ];
    let mut by_idx: BTreeMap<usize, u64> = BTreeMap::new();
    let mut cum = 0u64;
    for (value, rank) in marks {
        if rank <= cum {
            continue;
        }
        *by_idx.entry(bucket_index(value)).or_insert(0) += rank - cum;
        cum = rank;
    }
    Some(HistView {
        count,
        sum: kv.get("sum").copied().unwrap_or(0),
        min: kv.get("min").copied().unwrap_or(0),
        max,
        buckets: by_idx
            .into_iter()
            .map(|(i, c)| Bucket {
                lo: bucket_lo(i),
                hi: bucket_hi(i),
                count: c,
            })
            .collect(),
        exemplars: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_contiguous_and_ordered() {
        // Every value maps into a bucket whose [lo, hi] contains it,
        // and consecutive buckets tile the range with no gap.
        for idx in 0..NBUCKETS - 1 {
            assert_eq!(
                bucket_hi(idx) + 1,
                bucket_lo(idx + 1),
                "gap after bucket {idx}"
            );
        }
        for v in (0..2048u64).chain([
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ]) {
            let idx = bucket_index(v);
            assert!(
                bucket_lo(idx) <= v && v <= bucket_hi(idx),
                "value {v} outside bucket {idx} [{}, {}]",
                bucket_lo(idx),
                bucket_hi(idx)
            );
        }
        // Sub-16 values are exact.
        for v in 0..16u64 {
            assert_eq!(bucket_lo(bucket_index(v)), v);
            assert_eq!(bucket_hi(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_width_is_at_most_one_sixteenth() {
        for idx in SUB..NBUCKETS {
            let (lo, hi) = (bucket_lo(idx), bucket_hi(idx));
            let width = hi - lo + 1;
            assert!(width * 16 <= lo, "bucket {idx} [{lo},{hi}] too wide");
        }
    }

    #[test]
    fn quantiles_are_within_one_bucket_width() {
        let h = Histogram::new();
        let n = 10_000u64;
        for v in 1..=n {
            h.record(v);
        }
        for (q, exact) in [(0.5, n / 2), (0.9, n * 9 / 10), (0.99, n * 99 / 100)] {
            let got = h.quantile(q).unwrap();
            let idx = bucket_index(exact);
            let width = bucket_hi(idx) - bucket_lo(idx) + 1;
            assert!(
                got.abs_diff(exact) <= width,
                "q{q}: got {got}, exact {exact}, bucket width {width}"
            );
        }
        assert_eq!(h.quantile(1.0).unwrap(), n, "max is exact");
        let view = h.snapshot();
        assert_eq!(view.count, n);
        assert_eq!(view.min, 1);
        assert_eq!(view.max, n);
        assert_eq!(view.sum, n * (n + 1) / 2);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
        let v = h.snapshot();
        assert_eq!((v.min, v.max, v.sum), (0, 0, 0));
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_buckets() {
        let reg = Registry::new();
        let c = reg.counter("reqs");
        let h = reg.histogram("lat_us");
        c.add(5);
        h.record(100);
        let base = reg.snapshot();
        c.add(3);
        h.record(100);
        h.record(900);
        let delta = reg.snapshot().delta(&base);
        assert_eq!(delta.get("reqs"), Some(&MetricValue::Counter(3)));
        let Some(MetricValue::Histogram(dh)) = delta.get("lat_us") else {
            panic!("histogram expected");
        };
        assert_eq!(dh.count, 2);
    }

    #[test]
    fn delta_clamps_counter_regression_to_zero() {
        // An instance restart hands the sampler a baseline *ahead* of
        // the fresh process's counters. Deltas must clamp to zero, not
        // underflow to ~u64::MAX.
        let old = Registry::new();
        old.counter("reqs").add(1000);
        let oh = old.histogram("lat_us");
        for _ in 0..100 {
            oh.record(500);
        }
        let baseline = old.snapshot();

        let fresh = Registry::new();
        fresh.counter("reqs").add(3);
        let fh = fresh.histogram("lat_us");
        fh.record(500);
        fh.record(40);
        let delta = fresh.snapshot().delta(&baseline);
        assert_eq!(delta.get("reqs"), Some(&MetricValue::Counter(0)));
        let dh = delta.hist("lat_us").unwrap();
        // The regressed bucket (500s: 1 now vs 100 before) clamps out;
        // the genuinely new bucket (40) survives.
        assert_eq!(dh.count, 1);
        assert_eq!(dh.sum, 0, "regressed sum clamps to zero");
        assert!(dh.buckets.iter().all(|b| b.lo <= 40 && 40 <= b.hi));
    }

    #[test]
    fn hist_delta_clamps_regressed_buckets() {
        let base = HistView {
            count: 10,
            sum: 1000,
            min: 1,
            max: 200,
            buckets: vec![Bucket {
                lo: 192,
                hi: 207,
                count: 10,
            }],
            exemplars: Vec::new(),
        };
        let cur = HistView {
            count: 4,
            sum: 400,
            min: 1,
            max: 200,
            buckets: vec![Bucket {
                lo: 192,
                hi: 207,
                count: 4,
            }],
            exemplars: Vec::new(),
        };
        let d = cur.delta(&base);
        assert_eq!((d.count, d.sum), (0, 0));
        assert!(d.buckets.is_empty());
    }

    #[test]
    fn exemplars_link_octaves_to_the_latest_trace() {
        use crate::trace::TraceId;
        let h = Histogram::new();
        let t1 = TraceId::generate();
        let t2 = TraceId::generate();
        let t3 = TraceId::generate();
        h.record_traced(5, Some(t1)); // octave 0
        h.record_traced(100_000, Some(t2)); // a high octave
        h.record_traced(100_001, Some(t3)); // same octave: replaces t2
        h.record_traced(7, None); // untraced: no exemplar write
        let v = h.snapshot();
        assert_eq!(v.count, 4);
        assert_eq!(v.exemplars.len(), 2);
        assert_eq!(v.exemplars[0], (0, t1));
        assert_eq!(v.exemplars[1].1, t3, "latest trace wins the octave");
        assert!(
            v.exemplars[1].0 <= 100_000,
            "octave lower bound covers the value"
        );
        let json = v.to_json();
        assert!(json.contains(&format!("\"{}\"", t3.to_hex())), "{json}");
        assert!(json.contains("\"exemplars\":{"), "{json}");
        // Delta and merge carry exemplars through.
        assert_eq!(v.delta(&HistView::default()).exemplars, v.exemplars);
        assert_eq!(HistView::default().merge(&v).exemplars, v.exemplars);
    }

    #[test]
    fn text_round_trips_through_parse_text() {
        let reg = Registry::new();
        reg.counter("a.requests").add(7);
        reg.gauge("b.conns").set(-2);
        let h = reg.histogram("c.lat_us");
        for v in [50u64, 130, 700, 5000, 90_000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let parsed = Snapshot::parse_text(&snap.to_text());
        assert_eq!(parsed.counter_value("a.requests"), 7);
        assert_eq!(parsed.get("b.conns"), Some(&MetricValue::Gauge(-2)));
        let (orig, back) = (
            snap.hist("c.lat_us").unwrap(),
            parsed.hist("c.lat_us").unwrap(),
        );
        assert_eq!(back.count, orig.count);
        assert_eq!(back.sum, orig.sum);
        assert_eq!((back.min, back.max), (orig.min, orig.max));
        // The printed quantiles survive the round trip exactly.
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(back.quantile(q), orig.quantile(q), "q{q}");
        }
        // Two parsed polls: rate displays subtract the count fields.
        h.record(130);
        h.record(130);
        let parsed2 = Snapshot::parse_text(&reg.snapshot().to_text());
        let c2 = parsed2.hist("c.lat_us").unwrap().count;
        assert_eq!(c2 - back.count, 2);
        // Garbage lines are skipped, not fatal.
        let junk = Snapshot::parse_text("counter x notanumber\nwat\nhist h count=bad\n");
        assert!(junk.entries.is_empty());
    }

    #[test]
    fn registry_snapshot_exports_json_and_text() {
        let reg = Registry::new();
        reg.counter("a.requests").add(7);
        reg.gauge("b.conns").set(-2);
        let h = reg.histogram("c.lat_us");
        h.record(50);
        h.record(5000);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.requests\":7"));
        assert!(json.contains("\"b.conns\":-2"));
        assert!(json.contains("\"p99\":"));
        assert!(json.contains("\"buckets\":[["));
        let text = snap.to_text();
        assert!(text.contains("counter a.requests 7\n"));
        assert!(text.contains("gauge b.conns -2\n"));
        assert!(text.contains("hist c.lat_us count=2"));
        // Stable: two snapshots of the same state render identically.
        assert_eq!(text, reg.snapshot().to_text());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let reg = Registry::new();
        reg.histogram("x");
        reg.counter("x");
    }

    #[test]
    fn concurrent_recording_loses_no_increments() {
        // Drive records through the rayon(-shim) worker pool: every
        // increment must land despite sharded recording.
        let reg = Registry::new();
        let h = reg.histogram("lat");
        let c = reg.counter("n");
        let per_task = 10_000u64;
        let tasks = 16u64;
        use rayon::prelude::*;
        (0..tasks).into_par_iter().for_each(|t| {
            for i in 0..per_task {
                h.record(t * per_task + i);
                c.inc();
            }
        });
        assert_eq!(c.get(), tasks * per_task);
        let view = h.snapshot();
        assert_eq!(view.count, tasks * per_task);
        assert_eq!(view.min, 0);
        assert_eq!(view.max, tasks * per_task - 1);
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        // Property: snapshot(a).merge(snapshot(b)) == snapshot(a ++ b),
        // exercised over seeded pseudo-random streams (the proptest
        // shim drives the same property from tests/).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..20 {
            let xs: Vec<u64> = (0..round * 7).map(|_| next() >> (next() % 50)).collect();
            let ys: Vec<u64> = (0..round * 3).map(|_| next() >> (next() % 50)).collect();
            let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
            for &x in &xs {
                a.record(x);
                both.record(x);
            }
            for &y in &ys {
                b.record(y);
                both.record(y);
            }
            assert_eq!(
                a.snapshot().merge(&b.snapshot()),
                both.snapshot(),
                "round {round}"
            );
        }
    }
}
