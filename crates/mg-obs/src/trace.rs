//! Per-request distributed tracing: 16-byte trace ids, span trees of
//! stage timings, and a bounded ring of recent sampled traces.
//!
//! A tier (server or gateway) owns a [`Tracer`]. Every request gets a
//! [`TraceCtx`] — either adopted from the request envelope's trace
//! field (so one fetch stays one trace across the gateway→backend hop)
//! or freshly generated, head-sampled at the tracer's configured
//! 1-in-N rate. Stages push [`SpanRecord`]s as they finish; when the
//! request completes, [`Tracer::finish`] stores the trace in the ring
//! if it was sampled *or* the caller forces it (errors,
//! deadline-exceeded, hedge wins are always kept). Span ids come from
//! one process-wide counter, so parent links stay unambiguous when a
//! gateway and its backends share a process (the integration tests).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A 16-byte trace identifier, shared by every hop of one request.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct TraceId(pub [u8; 16]);

impl TraceId {
    /// A fresh id: wall clock + process id + a process-wide counter,
    /// mixed so concurrent generators never collide in practice.
    pub fn generate() -> TraceId {
        static CTR: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = CTR.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(nanos ^ (std::process::id() as u64).rotate_left(32));
        let lo = splitmix64(hi ^ seq);
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&hi.to_le_bytes());
        bytes[8..].copy_from_slice(&lo.to_le_bytes());
        TraceId(bytes)
    }

    /// Lowercase hex form (32 chars).
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parse the hex form produced by [`TraceId::to_hex`].
    pub fn from_hex(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.len() != 32 {
            return None;
        }
        let mut bytes = [0u8; 16];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(TraceId(bytes))
    }
}

impl std::fmt::Debug for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceId({})", self.to_hex())
    }
}

/// The trace fields carried in a request envelope: which trace this
/// request belongs to, the sender's span to parent this hop under, and
/// whether the sender already decided to sample it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WireTrace {
    pub trace_id: TraceId,
    pub parent_span: u64,
    pub sampled: bool,
}

/// One finished span: a named stage with its offset and duration
/// (microseconds, relative to the trace context's start).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: u64,
    pub name: String,
    pub start_us: u64,
    pub dur_us: u64,
    pub attrs: Vec<(String, String)>,
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

struct CtxInner {
    trace_id: TraceId,
    parent: u64,
    root: u64,
    start: Instant,
    sampled: AtomicBool,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A live per-request trace being recorded. Clone-able and `Send`:
/// hedged attempts on other threads record into the same context.
#[derive(Clone)]
pub struct TraceCtx {
    inner: Arc<CtxInner>,
}

impl TraceCtx {
    fn new(trace_id: TraceId, parent: u64, sampled: bool) -> TraceCtx {
        TraceCtx {
            inner: Arc::new(CtxInner {
                trace_id,
                parent,
                root: next_span_id(),
                start: Instant::now(),
                sampled: AtomicBool::new(sampled),
                spans: Mutex::new(Vec::with_capacity(16)),
            }),
        }
    }

    pub fn trace_id(&self) -> TraceId {
        self.inner.trace_id
    }

    /// This hop's root span id — the parent for its stage spans and
    /// for the next hop downstream.
    pub fn root(&self) -> u64 {
        self.inner.root
    }

    /// The instant this context was created (anchor for span offsets).
    pub fn started(&self) -> Instant {
        self.inner.start
    }

    pub fn sampled(&self) -> bool {
        self.inner.sampled.load(Ordering::Relaxed)
    }

    /// Force this trace to be kept regardless of the sampling draw.
    pub fn force_sample(&self) {
        self.inner.sampled.store(true, Ordering::Relaxed);
    }

    /// The envelope trace field to forward to the next hop, parented
    /// under `parent_span` (usually a stage span id or [`Self::root`]).
    pub fn wire(&self, parent_span: u64) -> WireTrace {
        WireTrace {
            trace_id: self.inner.trace_id,
            parent_span,
            sampled: self.sampled(),
        }
    }

    /// Record a stage that ran from `start` until now, parented under
    /// the root span. Returns the new span's id.
    pub fn span(&self, name: &str, start: Instant) -> u64 {
        self.span_at(name, self.inner.root, start, Instant::now(), Vec::new())
    }

    /// Record a stage with attributes, parented under the root span.
    pub fn span_attrs(&self, name: &str, start: Instant, attrs: Vec<(&str, String)>) -> u64 {
        self.span_at(name, self.inner.root, start, Instant::now(), attrs)
    }

    /// Fully explicit span record: name, parent, `[start, end]`, attrs.
    pub fn span_at(
        &self,
        name: &str,
        parent: u64,
        start: Instant,
        end: Instant,
        attrs: Vec<(&str, String)>,
    ) -> u64 {
        let id = next_span_id();
        self.span_done(id, name, parent, start, end, attrs);
        id
    }

    /// Pre-allocate a span id, so children recorded *while the stage is
    /// still running* can parent under it (spans are recorded at end
    /// time, which would otherwise force children before parents).
    /// Close the stage later with [`Self::span_done`].
    pub fn reserve(&self) -> u64 {
        next_span_id()
    }

    /// Record a span under an id pre-allocated with [`Self::reserve`].
    pub fn span_done(
        &self,
        id: u64,
        name: &str,
        parent: u64,
        start: Instant,
        end: Instant,
        attrs: Vec<(&str, String)>,
    ) {
        let base = self.inner.start;
        let rec = SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_us: start.saturating_duration_since(base).as_micros() as u64,
            dur_us: end.saturating_duration_since(start).as_micros() as u64,
            attrs: attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        };
        self.inner.spans.lock().expect("span lock").push(rec);
    }
}

/// One completed, stored trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    pub trace_id: TraceId,
    /// Remote parent span id (0 = this hop started the trace).
    pub parent: u64,
    /// This hop's root span id.
    pub root: u64,
    /// Which tier recorded it (`"serve"` / `"gateway"`).
    pub tier: String,
    /// `"ok"` or the terminal condition (`"deadline_exceeded"`,
    /// `"error: ..."`, ...).
    pub outcome: String,
    /// Wall time of the whole request at this hop, microseconds.
    pub total_us: u64,
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Sum of the durations of the root's direct child spans — the
    /// per-stage accounting the integration tests check against wall
    /// time.
    pub fn stage_sum_us(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.parent == self.root)
            .map(|s| s.dur_us)
            .sum()
    }

    /// This trace as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        crate::json::key(&mut out, "trace_id");
        out.push_str(&format!("\"{}\",", self.trace_id.to_hex()));
        crate::json::key(&mut out, "parent");
        out.push_str(&format!("{},", self.parent));
        crate::json::key(&mut out, "root");
        out.push_str(&format!("{},", self.root));
        crate::json::key(&mut out, "tier");
        out.push_str(&format!("\"{}\",", crate::json::escape(&self.tier)));
        crate::json::key(&mut out, "outcome");
        out.push_str(&format!("\"{}\",", crate::json::escape(&self.outcome)));
        crate::json::key(&mut out, "total_us");
        out.push_str(&format!("{},", self.total_us));
        crate::json::key(&mut out, "spans");
        out.push('[');
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            crate::json::key(&mut out, "id");
            out.push_str(&format!("{},", s.id));
            crate::json::key(&mut out, "parent");
            out.push_str(&format!("{},", s.parent));
            crate::json::key(&mut out, "name");
            out.push_str(&format!("\"{}\",", crate::json::escape(&s.name)));
            crate::json::key(&mut out, "start_us");
            out.push_str(&format!("{},", s.start_us));
            crate::json::key(&mut out, "dur_us");
            out.push_str(&s.dur_us.to_string());
            if !s.attrs.is_empty() {
                out.push(',');
                crate::json::key(&mut out, "attrs");
                out.push('{');
                for (j, (k, v)) in s.attrs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    crate::json::key(&mut out, k);
                    out.push_str(&format!("\"{}\"", crate::json::escape(v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Render `traces` as one JSON array.
pub fn traces_to_json(traces: &[Trace]) -> String {
    let mut out = String::from("[");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push(']');
    out
}

/// Per-tier trace collector: head sampling plus a bounded ring of
/// recent kept traces.
pub struct Tracer {
    tier: &'static str,
    cap: usize,
    /// Keep 1 in `rate` locally-originated traces (0 = only forced or
    /// upstream-sampled ones).
    rate: u64,
    seq: AtomicU64,
    ring: Mutex<VecDeque<Trace>>,
}

impl Tracer {
    /// A tracer keeping at most `cap` traces, head-sampling 1 in
    /// `rate` requests that arrive without an upstream decision.
    pub fn new(tier: &'static str, cap: usize, rate: u64) -> Tracer {
        Tracer {
            tier,
            cap: cap.max(1),
            rate,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Begin a request trace: adopt the envelope's trace field when
    /// present (same trace id, parented under the sender's span, its
    /// sampling decision honoured), otherwise generate a fresh id and
    /// head-sample it.
    pub fn begin(&self, wire: Option<WireTrace>) -> TraceCtx {
        match wire {
            Some(w) => {
                // An upstream "sampled" wins; an upstream "not sampled"
                // can still be promoted locally by force_sample.
                TraceCtx::new(w.trace_id, w.parent_span, w.sampled)
            }
            None => {
                let n = self.seq.fetch_add(1, Ordering::Relaxed);
                let sampled = self.rate > 0 && n.is_multiple_of(self.rate);
                TraceCtx::new(TraceId::generate(), 0, sampled)
            }
        }
    }

    /// Complete a request: store the trace when it was sampled or
    /// `force` is set (error / deadline-exceeded / hedge-win paths
    /// force, so the interesting traces are always present).
    pub fn finish(&self, ctx: &TraceCtx, outcome: &str, force: bool) {
        if !(ctx.sampled() || force) {
            return;
        }
        let total_us = ctx.inner.start.elapsed().as_micros() as u64;
        let spans = ctx.inner.spans.lock().expect("span lock").clone();
        let trace = Trace {
            trace_id: ctx.trace_id(),
            parent: ctx.inner.parent,
            root: ctx.root(),
            tier: self.tier.to_string(),
            outcome: outcome.to_string(),
            total_us,
            spans,
        };
        let mut ring = self.ring.lock().expect("trace ring lock");
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Stored traces right now.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The slowest `n` stored traces, slowest first. The ring is copied
    /// out under the lock; sorting and truncation run lock-free so a
    /// dump never stalls the `finish` calls on the request path.
    pub fn slowest(&self, n: usize) -> Vec<Trace> {
        let mut all = self.recent();
        all.sort_by_key(|t| std::cmp::Reverse(t.total_us));
        all.truncate(n);
        all
    }

    /// Every stored trace, oldest first.
    pub fn recent(&self) -> Vec<Trace> {
        let all: Vec<Trace> = {
            let ring = self.ring.lock().expect("trace ring lock");
            ring.iter().cloned().collect()
        };
        all
    }

    /// The id of the most recently stored trace — a cheap peek (no
    /// clone of the ring) used as the exemplar source for SLO events.
    pub fn last_trace_id(&self) -> Option<TraceId> {
        self.ring
            .lock()
            .expect("trace ring lock")
            .back()
            .map(|t| t.trace_id)
    }

    /// The slowest `n` traces as a JSON array (the trace-dump op's
    /// payload).
    pub fn dump_json(&self, n: usize) -> String {
        traces_to_json(&self.slowest(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn trace_ids_are_unique_and_hex_round_trips() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a, b);
        assert_eq!(TraceId::from_hex(&a.to_hex()), Some(a));
        assert_eq!(TraceId::from_hex("zz"), None);
        assert_eq!(TraceId::from_hex(&"0".repeat(31)), None);
    }

    #[test]
    fn spans_record_offsets_and_stage_sum() {
        let tracer = Tracer::new("serve", 8, 1);
        let ctx = tracer.begin(None);
        assert!(ctx.sampled(), "rate 1 samples everything");
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        ctx.span("queue_wait", t0);
        let t1 = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        ctx.span_attrs("encode", t1, vec![("cache", "miss".into())]);
        tracer.finish(&ctx, "ok", false);
        let stored = tracer.recent();
        assert_eq!(stored.len(), 1);
        let t = &stored[0];
        assert_eq!(t.spans.len(), 2);
        assert!(t.spans.iter().all(|s| s.parent == t.root));
        assert!(t.stage_sum_us() <= t.total_us);
        assert!(t.stage_sum_us() >= 2_000, "two ≥2ms stages recorded");
        let json = t.to_json();
        assert!(json.contains("\"name\":\"queue_wait\""));
        assert!(json.contains("\"cache\":\"miss\""));
    }

    #[test]
    fn head_sampling_honours_rate_and_force() {
        let tracer = Tracer::new("serve", 64, 4);
        for _ in 0..16 {
            let ctx = tracer.begin(None);
            tracer.finish(&ctx, "ok", false);
        }
        assert_eq!(tracer.len(), 4, "1-in-4 head sampling");
        // Unsampled but forced (the error path) is still kept.
        let tracer = Tracer::new("serve", 64, 0);
        let ctx = tracer.begin(None);
        assert!(!ctx.sampled());
        tracer.finish(&ctx, "error: boom", true);
        assert_eq!(tracer.len(), 1);
        assert_eq!(tracer.recent()[0].outcome, "error: boom");
    }

    #[test]
    fn adopted_wire_trace_keeps_id_and_parent() {
        let upstream = Tracer::new("gateway", 8, 1);
        let up = upstream.begin(None);
        let wire = up.wire(up.root());
        assert!(wire.sampled);

        let downstream = Tracer::new("serve", 8, 0);
        let ctx = downstream.begin(Some(wire));
        assert_eq!(ctx.trace_id(), up.trace_id());
        assert!(ctx.sampled(), "upstream sampling decision propagates");
        downstream.finish(&ctx, "ok", false);
        let t = &downstream.recent()[0];
        assert_eq!(t.trace_id, up.trace_id());
        assert_eq!(t.parent, up.root());
        assert_ne!(t.root, up.root());
    }

    #[test]
    fn dumping_during_a_finish_storm_stays_consistent() {
        // Regression: `slowest`/`dump_json` used to sort and truncate
        // while still holding the ring lock, stalling every `finish` on
        // the request path behind a dump. The dump must stay correct
        // (sorted, bounded, parseable) while a storm of finishes runs.
        let tracer = Arc::new(Tracer::new("serve", 64, 1));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let tracer = Arc::clone(&tracer);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let ctx = tracer.begin(None);
                        tracer.finish(&ctx, "ok", true);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let slow = tracer.slowest(16);
            assert!(slow.len() <= 16);
            assert!(slow.windows(2).all(|w| w[0].total_us >= w[1].total_us));
            let json = tracer.dump_json(16);
            assert!(json.starts_with('[') && json.ends_with(']'));
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        assert!(tracer.len() <= 64, "ring stays bounded under the storm");
        assert!(tracer.last_trace_id().is_some());
    }

    #[test]
    fn ring_is_bounded_and_slowest_sorts() {
        let tracer = Tracer::new("serve", 3, 1);
        for ms in [5u64, 1, 9, 3] {
            let ctx = tracer.begin(None);
            std::thread::sleep(Duration::from_millis(ms));
            tracer.finish(&ctx, "ok", false);
        }
        assert_eq!(tracer.len(), 3, "ring capped");
        let slow = tracer.slowest(2);
        assert_eq!(slow.len(), 2);
        assert!(slow[0].total_us >= slow[1].total_us);
        assert!(slow[0].total_us >= 8_000, "the 9ms trace is slowest");
        let json = tracer.dump_json(2);
        assert!(json.starts_with('[') && json.ends_with(']'));
    }
}
