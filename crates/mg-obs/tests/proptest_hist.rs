//! Property tests for the mg-obs histogram: merging two recorded
//! streams must be indistinguishable from recording their
//! concatenation, and quantiles must stay within one bucket width of
//! the exact order statistic.

use mg_obs::Histogram;
use proptest::prelude::*;

/// Spread raw u64s across the full dynamic range (latencies cluster in
/// low octaves; right-shifting by a drawn amount exercises every
/// octave including the unit buckets).
fn spread(raw: u64, shift: u64) -> u64 {
    raw >> (shift % 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merge_equals_concatenated_stream(
        xs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..200),
        ys in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..200),
    ) {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &(raw, shift) in &xs {
            a.record(spread(raw, shift));
            both.record(spread(raw, shift));
        }
        for &(raw, shift) in &ys {
            b.record(spread(raw, shift));
            both.record(spread(raw, shift));
        }
        let merged = a.snapshot().merge(&b.snapshot());
        prop_assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn quantiles_are_within_one_bucket_of_exact(
        vals in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        let mut sorted: Vec<u64> = vals.iter().map(|&(r, s)| spread(r, s)).collect();
        for &v in &sorted {
            h.record(v);
        }
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let got = h.quantile(q).unwrap();
        // The reported edge is the upper bound of the exact value's
        // bucket: never below the exact value, and within one bucket
        // width (≤ exact/16 + 1) above it.
        prop_assert!(got >= exact, "got {} < exact {}", got, exact);
        let width = (exact / 16).max(1);
        prop_assert!(
            got - exact <= width,
            "got {} exceeds exact {} by more than a bucket width {}",
            got, exact, width
        );
    }
}
