//! Extraction and assembly of coefficient classes.

use mg_grid::{Hierarchy, NdArray, Real, Shape};

/// Visit the finest-array offsets of class `k` in a deterministic order
/// (re-export of [`mg_grid::pack::for_each_class_offset`], the canonical
/// class layout also used by the streaming write-out in `mg-core`).
pub use mg_grid::pack::for_each_class_offset;

/// Extract all classes from an in-place refactored array.
///
/// Returns `L + 1` buffers: `out[0]` = coarsest nodal values, `out[l]` =
/// coefficient class `C_l`.
pub fn extract_classes<T: Real>(data: &NdArray<T>, hier: &Hierarchy) -> Vec<Vec<T>> {
    assert_eq!(data.shape(), hier.finest());
    let mut out = Vec::with_capacity(hier.nlevels() + 1);
    for k in 0..=hier.nlevels() {
        let expect = if k == 0 {
            hier.level_len(0)
        } else {
            hier.class_len(k)
        };
        let mut buf = Vec::with_capacity(expect);
        for_each_class_offset(hier, k, |off| buf.push(data.as_slice()[off]));
        debug_assert_eq!(buf.len(), expect);
        out.push(buf);
    }
    out
}

/// A refactored dataset held as separate coefficient classes.
///
/// This is the unit that gets stored/transported selectively: keeping a
/// *prefix* of classes yields a lower-accuracy (but complete) refactored
/// array; [`Refactored::assemble`] rebuilds the in-place layout with
/// missing classes zeroed.
#[derive(Clone, Debug)]
pub struct Refactored<T> {
    hier: Hierarchy,
    classes: Vec<Vec<T>>,
}

impl<T: Real> Refactored<T> {
    /// Slice an in-place refactored array into classes.
    pub fn from_array(data: &NdArray<T>, hier: &Hierarchy) -> Self {
        Refactored {
            hier: hier.clone(),
            classes: extract_classes(data, hier),
        }
    }

    /// Construct from explicit class buffers (used by deserialization).
    ///
    /// # Panics
    /// If the class count or any class length does not match the hierarchy.
    pub fn from_classes(hier: Hierarchy, classes: Vec<Vec<T>>) -> Self {
        assert_eq!(classes.len(), hier.nlevels() + 1, "class count mismatch");
        for (k, c) in classes.iter().enumerate() {
            let expect = if k == 0 {
                hier.level_len(0)
            } else {
                hier.class_len(k)
            };
            assert_eq!(c.len(), expect, "class {k} length mismatch");
        }
        Refactored { hier, classes }
    }

    /// The hierarchy the classes belong to.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// Number of classes (`L + 1`).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The `k`-th class buffer.
    pub fn class(&self, k: usize) -> &[T] {
        &self.classes[k]
    }

    /// All class buffers, coarsest first.
    pub fn classes(&self) -> &[Vec<T>] {
        &self.classes
    }

    /// Bytes occupied by classes `0..count` (what a consumer would read).
    pub fn prefix_bytes(&self, count: usize) -> usize {
        self.classes[..count.min(self.classes.len())]
            .iter()
            .map(|c| c.len() * T::BYTES)
            .sum()
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.prefix_bytes(self.classes.len())
    }

    /// Rebuild the in-place refactored array using classes `0..count`;
    /// classes beyond `count` are zeroed (their information is dropped).
    pub fn assemble(&self, count: usize) -> NdArray<T> {
        assert!(count >= 1, "at least the coarsest class is required");
        let shape: Shape = self.hier.finest();
        let mut arr = NdArray::<T>::zeros(shape);
        for (k, class) in self.classes.iter().enumerate().take(count) {
            let mut it = class.iter();
            let slice = arr.as_mut_slice();
            for_each_class_offset(&self.hier, k, |off| {
                slice[off] = *it.next().expect("class length matches layout");
            });
        }
        arr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::Refactorer;
    use mg_grid::real::max_abs_diff;

    fn field(shape: Shape) -> NdArray<f64> {
        NdArray::from_fn(shape, |i| {
            ((i.iter()
                .enumerate()
                .map(|(d, &v)| v * (d + 2))
                .sum::<usize>()
                * 31)
                % 97) as f64
                * 0.037
        })
    }

    #[test]
    fn class_offsets_partition_the_array() {
        for shape in [Shape::d1(17), Shape::d2(9, 5), Shape::d3(5, 5, 9)] {
            let hier = Hierarchy::new(shape).unwrap();
            let mut seen = vec![0usize; shape.len()];
            for k in 0..=hier.nlevels() {
                for_each_class_offset(&hier, k, |off| seen[off] += 1);
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "{shape:?}: offsets not a partition: {seen:?}"
            );
        }
    }

    #[test]
    fn class_lengths_match_hierarchy() {
        let shape = Shape::d2(9, 17);
        let hier = Hierarchy::new(shape).unwrap();
        let data = field(shape);
        let classes = extract_classes(&data, &hier);
        assert_eq!(classes.len(), hier.nlevels() + 1);
        assert_eq!(classes[0].len(), hier.level_len(0));
        for (l, class) in classes.iter().enumerate().skip(1) {
            assert_eq!(class.len(), hier.class_len(l));
        }
    }

    #[test]
    fn extract_assemble_full_is_identity() {
        let shape = Shape::d3(5, 9, 5);
        let hier = Hierarchy::new(shape).unwrap();
        let data = field(shape);
        let r = Refactored::from_array(&data, &hier);
        let back = r.assemble(r.num_classes());
        assert_eq!(back, data);
    }

    #[test]
    fn full_pipeline_recomposes_exactly() {
        let shape = Shape::d2(17, 17);
        let mut refactorer = Refactorer::<f64>::new(shape).unwrap();
        let orig = field(shape);
        let mut data = orig.clone();
        refactorer.decompose(&mut data);
        let hier = refactorer.hierarchy().clone();
        let refac = Refactored::from_array(&data, &hier);
        let mut rebuilt = refac.assemble(refac.num_classes());
        refactorer.recompose(&mut rebuilt);
        assert!(max_abs_diff(rebuilt.as_slice(), orig.as_slice()) < 1e-11);
    }

    #[test]
    fn prefix_assembly_zeroes_dropped_classes() {
        let shape = Shape::d2(9, 9);
        let hier = Hierarchy::new(shape).unwrap();
        let data = field(shape);
        let r = Refactored::from_array(&data, &hier);
        let partial = r.assemble(1); // coarsest only
                                     // All C_l positions must be zero.
        let mut nonzero_outside = 0;
        for k in 1..=hier.nlevels() {
            for_each_class_offset(&hier, k, |off| {
                if partial.as_slice()[off] != 0.0 {
                    nonzero_outside += 1;
                }
            });
        }
        assert_eq!(nonzero_outside, 0);
        // Coarsest values present.
        let mut present = 0;
        for_each_class_offset(&hier, 0, |off| {
            assert_eq!(partial.as_slice()[off], data.as_slice()[off]);
            present += 1;
        });
        assert_eq!(present, hier.level_len(0));
    }

    #[test]
    fn prefix_bytes_accumulate() {
        let shape = Shape::d1(17);
        let hier = Hierarchy::new(shape).unwrap();
        let r = Refactored::from_array(&field(shape), &hier);
        let mut last = 0;
        for k in 1..=r.num_classes() {
            let b = r.prefix_bytes(k);
            assert!(b > last);
            last = b;
        }
        assert_eq!(r.total_bytes(), 17 * 8);
    }

    #[test]
    #[should_panic(expected = "class 1 length mismatch")]
    fn from_classes_validates_lengths() {
        let hier = Hierarchy::new(Shape::d1(5)).unwrap();
        Refactored::from_classes(hier, vec![vec![0.0f64; 2], vec![0.0; 99], vec![0.0; 2]]);
    }
}
