//! Progressive (prefix) reconstruction and size/accuracy trade-offs.

use crate::classes::Refactored;
use mg_core::Refactorer;
use mg_grid::{NdArray, Real};

/// Reconstruct an approximation from the first `count` classes.
///
/// `refactorer` must have been built for the same shape (and coordinates)
/// as the refactored data. `count == num_classes()` reproduces the original
/// to floating-point accuracy; smaller prefixes trade accuracy for bytes.
pub fn reconstruct_prefix<T: Real>(
    refac: &Refactored<T>,
    count: usize,
    refactorer: &mut Refactorer<T>,
) -> NdArray<T> {
    assert_eq!(
        refactorer.hierarchy(),
        refac.hierarchy(),
        "refactorer/hierarchy mismatch"
    );
    let mut arr = refac.assemble(count);
    refactorer.recompose(&mut arr);
    arr
}

/// Accuracy/size curve: for every prefix length `k = 1..=num_classes()`,
/// the bytes read and the actual L∞ / RMS error against `original`.
///
/// This is the measurement behind the paper's §V-A accuracy-vs-classes
/// trade-off (and our Fig. 10 harness).
pub fn accuracy_curve<T: Real>(
    refac: &Refactored<T>,
    original: &NdArray<T>,
    refactorer: &mut Refactorer<T>,
) -> Vec<PrefixAccuracy> {
    (1..=refac.num_classes())
        .map(|k| {
            let approx = reconstruct_prefix(refac, k, refactorer);
            PrefixAccuracy {
                classes: k,
                bytes: refac.prefix_bytes(k),
                linf: mg_grid::real::max_abs_diff(approx.as_slice(), original.as_slice()),
                rms: mg_grid::real::rms_diff(approx.as_slice(), original.as_slice()),
            }
        })
        .collect()
}

/// One point of the accuracy/size curve.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PrefixAccuracy {
    /// Classes used for the reconstruction.
    pub classes: usize,
    /// Bytes a consumer must read for this prefix.
    pub bytes: usize,
    /// Measured maximum absolute error.
    pub linf: f64,
    /// Measured root-mean-square error.
    pub rms: f64,
}

/// Smallest prefix whose byte count fits the budget (always at least the
/// coarsest class). Returns the number of classes to keep.
pub fn classes_for_budget<T: Real>(refac: &Refactored<T>, budget_bytes: usize) -> usize {
    let mut k = 1;
    while k < refac.num_classes() && refac.prefix_bytes(k + 1) <= budget_bytes {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_grid::{CoordSet, Shape};

    fn smooth(shape: Shape, coords: &CoordSet<f64>) -> NdArray<f64> {
        NdArray::sample(shape, coords.as_vecs(), |x| {
            let mut v = 1.0;
            for &xi in x {
                v *= (2.5 * xi).sin() + 1.3;
            }
            v
        })
    }

    fn setup(shape: Shape) -> (NdArray<f64>, Refactored<f64>, Refactorer<f64>) {
        let coords = CoordSet::<f64>::uniform(shape);
        let orig = smooth(shape, &coords);
        let mut r = Refactorer::with_coords(shape, coords).unwrap();
        let mut data = orig.clone();
        r.decompose(&mut data);
        let hier = r.hierarchy().clone();
        (orig, Refactored::from_array(&data, &hier), r)
    }

    #[test]
    fn full_prefix_is_lossless() {
        let (orig, refac, mut r) = setup(Shape::d2(33, 33));
        let rec = reconstruct_prefix(&refac, refac.num_classes(), &mut r);
        assert!(mg_grid::real::max_abs_diff(rec.as_slice(), orig.as_slice()) < 1e-11);
    }

    #[test]
    fn error_decreases_with_more_classes_on_smooth_data() {
        let (orig, refac, mut r) = setup(Shape::d2(65, 65));
        let curve = accuracy_curve(&refac, &orig, &mut r);
        assert_eq!(curve.len(), refac.num_classes());
        // Smooth data: every extra class improves (or at least does not
        // worsen) both norms; allow tiny FP slack.
        for w in curve.windows(2) {
            assert!(
                w[1].linf <= w[0].linf * (1.0 + 1e-9) + 1e-12,
                "linf not decreasing: {curve:?}"
            );
            assert!(w[1].rms <= w[0].rms * (1.0 + 1e-9) + 1e-12);
        }
        // and the last point is lossless
        assert!(curve.last().unwrap().linf < 1e-11);
    }

    #[test]
    fn bytes_increase_along_curve() {
        let (orig, refac, mut r) = setup(Shape::d1(129));
        let curve = accuracy_curve(&refac, &orig, &mut r);
        for w in curve.windows(2) {
            assert!(w[1].bytes > w[0].bytes);
        }
        assert_eq!(curve.last().unwrap().bytes, 129 * 8);
    }

    #[test]
    fn budget_selection() {
        let (_, refac, _) = setup(Shape::d1(17));
        // Classes: 2 + 1 + 2 + 4 + 8 values (f64 = 8 bytes each).
        assert_eq!(classes_for_budget(&refac, 0), 1);
        assert_eq!(
            classes_for_budget(&refac, refac.total_bytes()),
            refac.num_classes()
        );
        let half = refac.total_bytes() / 2;
        let k = classes_for_budget(&refac, half);
        assert!(refac.prefix_bytes(k) <= half || k == 1);
    }

    #[test]
    fn reconstruction_with_3d_data() {
        let (orig, refac, mut r) = setup(Shape::d3(9, 17, 9));
        let rec_all = reconstruct_prefix(&refac, refac.num_classes(), &mut r);
        assert!(mg_grid::real::max_abs_diff(rec_all.as_slice(), orig.as_slice()) < 1e-11);
        let rec_1 = reconstruct_prefix(&refac, 1, &mut r);
        let e1 = mg_grid::real::max_abs_diff(rec_1.as_slice(), orig.as_slice());
        assert!(e1 > 1e-6, "dropping all detail must cost accuracy");
    }
}
