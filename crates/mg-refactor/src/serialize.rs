//! Binary wire format for refactored data.
//!
//! Layout (little endian):
//!
//! ```text
//! magic     u32   0x4D475244 ("MGRD")
//! version   u16   1
//! precision u8    4 = f32, 8 = f64
//! ndim      u8
//! dims      u64 × ndim
//! nclasses  u32   (always L + 1 on write; readers may stop early)
//! classes   per class: u64 length + raw little-endian scalars
//! ```
//!
//! Because classes are stored most-important-first, a reader can stop
//! after any class boundary and still deserialize a valid (lower-accuracy)
//! representation — this is what the tiered-storage simulator in `mg-io`
//! exploits to fetch only the prefix a consumer needs.

use crate::classes::Refactored;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mg_grid::{Hierarchy, Real, Shape};

const MAGIC: u32 = 0x4D47_5244;
const VERSION: u16 = 1;

/// Errors produced when decoding refactored data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic number (not an mg-refactor payload).
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u16),
    /// Scalar width does not match the requested type.
    BadPrecision(u8),
    /// Shape invalid or not dyadic.
    BadShape(String),
    /// Buffer ended mid-payload.
    Truncated,
    /// A class block declared an impossible length.
    LengthMismatch {
        /// Class index.
        class: usize,
        /// Length the hierarchy requires.
        expect: usize,
        /// Length the payload declared.
        got: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08X}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::BadPrecision(p) => write!(f, "bad precision tag {p}"),
            DecodeError::BadShape(s) => write!(f, "bad shape: {s}"),
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::LengthMismatch { class, expect, got } => {
                write!(f, "class {class}: expected {expect} values, got {got}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize the first `count` classes (pass `num_classes()` for all).
pub fn encode_prefix<T: Real>(refac: &Refactored<T>, count: usize) -> Bytes {
    let count = count.clamp(1, refac.num_classes());
    let hier = refac.hierarchy();
    let shape = hier.finest();
    let mut buf = BytesMut::with_capacity(32 + refac.prefix_bytes(count));
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(T::BYTES as u8);
    buf.put_u8(shape.ndim() as u8);
    for &d in shape.as_slice() {
        buf.put_u64_le(d as u64);
    }
    buf.put_u32_le(count as u32);
    for class in refac.classes().iter().take(count) {
        buf.put_u64_le(class.len() as u64);
        for &v in class {
            if T::BYTES == 4 {
                buf.put_f32_le(v.to_f64() as f32);
            } else {
                buf.put_f64_le(v.to_f64());
            }
        }
    }
    buf.freeze()
}

/// Serialize every class.
pub fn encode<T: Real>(refac: &Refactored<T>) -> Bytes {
    encode_prefix(refac, refac.num_classes())
}

/// Decode a (possibly prefix-only) refactored payload. Missing trailing
/// classes are zero-filled, matching prefix reconstruction semantics.
pub fn decode<T: Real>(mut buf: Bytes) -> Result<Refactored<T>, DecodeError> {
    macro_rules! need {
        ($n:expr) => {
            if buf.remaining() < $n {
                return Err(DecodeError::Truncated);
            }
        };
    }
    need!(4 + 2 + 1 + 1);
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let precision = buf.get_u8();
    if precision as usize != T::BYTES {
        return Err(DecodeError::BadPrecision(precision));
    }
    let ndim = buf.get_u8() as usize;
    if ndim == 0 || ndim > mg_grid::MAX_DIMS {
        return Err(DecodeError::BadShape(format!("ndim = {ndim}")));
    }
    need!(8 * ndim);
    let mut dims = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        let d = buf.get_u64_le() as usize;
        if d == 0 {
            return Err(DecodeError::BadShape("zero extent".into()));
        }
        dims.push(d);
    }
    let shape = Shape::new(&dims);
    let hier = Hierarchy::new(shape).map_err(|e| DecodeError::BadShape(e.to_string()))?;
    need!(4);
    let stored = buf.get_u32_le() as usize;
    if stored == 0 || stored > hier.nlevels() + 1 {
        return Err(DecodeError::BadShape(format!("{stored} classes")));
    }

    let mut classes = Vec::with_capacity(hier.nlevels() + 1);
    for k in 0..=hier.nlevels() {
        let expect = if k == 0 {
            hier.level_len(0)
        } else {
            hier.class_len(k)
        };
        if k < stored {
            need!(8);
            let got = buf.get_u64_le() as usize;
            if got != expect {
                return Err(DecodeError::LengthMismatch {
                    class: k,
                    expect,
                    got,
                });
            }
            need!(expect * T::BYTES);
            let mut c = Vec::with_capacity(expect);
            for _ in 0..expect {
                let v = if T::BYTES == 4 {
                    T::from_f64(buf.get_f32_le() as f64)
                } else {
                    T::from_f64(buf.get_f64_le())
                };
                c.push(v);
            }
            classes.push(c);
        } else {
            classes.push(vec![T::ZERO; expect]);
        }
    }
    Ok(Refactored::from_classes(hier, classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_core::Refactorer;
    use mg_grid::NdArray;

    fn sample() -> (Refactored<f64>, NdArray<f64>) {
        let shape = Shape::d2(9, 17);
        let orig = NdArray::from_fn(shape, |i| ((i[0] * 5 + i[1] * 3) % 13) as f64 * 0.11);
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut d = orig.clone();
        r.decompose(&mut d);
        let hier = r.hierarchy().clone();
        (Refactored::from_array(&d, &hier), orig)
    }

    #[test]
    fn round_trip_all_classes() {
        let (refac, _) = sample();
        let bytes = encode(&refac);
        let back = decode::<f64>(bytes).unwrap();
        assert_eq!(back.num_classes(), refac.num_classes());
        for k in 0..refac.num_classes() {
            assert_eq!(back.class(k), refac.class(k));
        }
    }

    #[test]
    fn prefix_round_trip_zero_fills() {
        let (refac, _) = sample();
        let bytes = encode_prefix(&refac, 2);
        assert!(bytes.len() < encode(&refac).len());
        let back = decode::<f64>(bytes).unwrap();
        assert_eq!(back.class(0), refac.class(0));
        assert_eq!(back.class(1), refac.class(1));
        for k in 2..refac.num_classes() {
            assert!(back.class(k).iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let (refac, _) = sample();
        let mut b = encode(&refac).to_vec();
        b[0] ^= 0xFF;
        assert!(matches!(
            decode::<f64>(Bytes::from(b)),
            Err(DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_wrong_precision() {
        let (refac, _) = sample();
        let b = encode(&refac);
        assert!(matches!(
            decode::<f32>(b),
            Err(DecodeError::BadPrecision(8))
        ));
    }

    #[test]
    fn rejects_truncation_mid_class() {
        let (refac, _) = sample();
        let b = encode(&refac);
        let cut = b.slice(..b.len() - 3);
        assert!(matches!(decode::<f64>(cut), Err(DecodeError::Truncated)));
    }

    #[test]
    fn rejects_non_dyadic_dims() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(8);
        buf.put_u8(1);
        buf.put_u64_le(6); // not 2^k + 1
        buf.put_u32_le(1);
        assert!(matches!(
            decode::<f64>(buf.freeze()),
            Err(DecodeError::BadShape(_))
        ));
    }

    #[test]
    fn f32_payloads() {
        let shape = Shape::d1(9);
        let orig = NdArray::from_fn(shape, |i| i[0] as f32 * 0.5);
        let mut r = Refactorer::<f32>::new(shape).unwrap();
        let mut d = orig.clone();
        r.decompose(&mut d);
        let hier = r.hierarchy().clone();
        let refac = Refactored::from_array(&d, &hier);
        let bytes = encode(&refac);
        let back = decode::<f32>(bytes).unwrap();
        assert_eq!(back.class(0), refac.class(0));
    }

    #[test]
    fn encoded_size_is_header_plus_payload() {
        let (refac, _) = sample();
        let bytes = encode(&refac);
        let header = 4 + 2 + 1 + 1 + 8 * 2 + 4;
        let payload: usize = refac.classes().iter().map(|c| 8 + c.len() * 8).sum();
        assert_eq!(bytes.len(), header + payload);
    }
}
