//! Coefficient classes and progressive reconstruction.
//!
//! Decomposition (see `mg-core`) leaves the refactored representation *in
//! place*; this crate slices it into the paper's **coefficient classes**
//! (Fig. 1): class 0 holds the coarsest nodal values `N_0`, class `l`
//! (`1 <= l <= L`) holds the coefficients `C_l` at `N_l \ N_{l-1}`.
//! Classes are ordered most- to least-important: a prefix of classes
//! reconstructs an approximation whose accuracy improves as more classes
//! are added, which is what lets producers and consumers trade accuracy
//! for bytes when storing/reading (paper §I, §V-A).
//!
//! Modules:
//! * [`classes`] — extraction/assembly between the in-place layout and
//!   per-class buffers;
//! * [`progressive`] — prefix reconstruction and accuracy/size trade-off
//!   helpers;
//! * [`error`] — per-class norms and reconstruction-error indicators;
//! * [`serialize`] — a compact binary wire format for refactored data;
//! * [`streaming`] — incremental decoding: classes become usable as their
//!   bytes arrive (the Fig. 1 network/tier streaming consumer).

pub mod classes;
pub mod error;
pub mod progressive;
pub mod serialize;
pub mod streaming;

pub use classes::{extract_classes, for_each_class_offset, Refactored};
pub use error::{class_norms, ClassNorms};
pub use progressive::reconstruct_prefix;
