//! Incremental decoding of refactored payloads.
//!
//! In the Fig. 1 scenario, coefficient classes arrive over a network or
//! from progressively slower storage tiers. [`StreamingDecoder`] consumes
//! byte chunks as they arrive and exposes each class the moment its last
//! byte lands, so a consumer can begin reconstructing (and refine its
//! approximation) without waiting for the full payload.
//!
//! The format is the `serialize` wire format; the decoder is a hand-rolled
//! incremental parser over the same layout.

use crate::classes::Refactored;
use crate::serialize::DecodeError;
use mg_grid::{Hierarchy, Real, Shape};

/// Parser state.
enum State {
    Header,
    ClassLen { class: usize },
    ClassBody { class: usize, expect: usize },
    Done,
}

/// Incremental wire-format decoder.
///
/// Feed bytes with [`StreamingDecoder::push`]; inspect progress with
/// [`StreamingDecoder::classes_ready`]; take a (zero-filled beyond the
/// ready prefix) [`Refactored`] snapshot at any time with
/// [`StreamingDecoder::snapshot`], or move completed classes out one at a
/// time with [`StreamingDecoder::take_class`] so a tier-by-tier consumer
/// (e.g. `mg_core::recompose_streaming`) never holds the whole payload.
pub struct StreamingDecoder<T> {
    buf: Vec<u8>,
    state: State,
    hier: Option<Hierarchy>,
    stored: usize,
    /// Completed classes, coarsest first; `None` marks a class moved out
    /// via [`StreamingDecoder::take_class`].
    classes: Vec<Option<Vec<T>>>,
}

impl<T: Real> Default for StreamingDecoder<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Real> StreamingDecoder<T> {
    /// Fresh decoder awaiting the header.
    pub fn new() -> Self {
        StreamingDecoder {
            buf: Vec::new(),
            state: State::Header,
            hier: None,
            stored: 0,
            classes: Vec::new(),
        }
    }

    /// Number of classes fully received so far (including any already
    /// moved out with [`StreamingDecoder::take_class`]).
    pub fn classes_ready(&self) -> usize {
        self.classes.len()
    }

    /// Number of classes the payload header advertises, once it has been
    /// parsed. Prefix payloads advertise fewer than `L + 1` classes.
    pub fn classes_stored(&self) -> Option<usize> {
        self.hier.as_ref().map(|_| self.stored)
    }

    /// Move a completed class's values out of the decoder (freeing its
    /// memory), or `None` if the class has not fully arrived — or was
    /// already taken. Taken classes appear zero-filled in
    /// [`StreamingDecoder::snapshot`].
    pub fn take_class(&mut self, k: usize) -> Option<Vec<T>> {
        self.classes.get_mut(k)?.take()
    }

    /// Whether every advertised class has arrived.
    pub fn is_complete(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// The hierarchy, once the header has been parsed.
    pub fn hierarchy(&self) -> Option<&Hierarchy> {
        self.hier.as_ref()
    }

    /// Feed a chunk; returns the number of classes now ready.
    pub fn push(&mut self, chunk: &[u8]) -> Result<usize, DecodeError> {
        self.buf.extend_from_slice(chunk);
        loop {
            match &self.state {
                State::Header => {
                    // fixed part: magic(4) version(2) precision(1) ndim(1)
                    if self.buf.len() < 8 {
                        break;
                    }
                    // Validate the fixed fields as soon as they arrive so
                    // a bad stream fails fast.
                    let magic = u32::from_le_bytes(self.buf[0..4].try_into().unwrap());
                    if magic != 0x4D47_5244 {
                        return Err(DecodeError::BadMagic(magic));
                    }
                    let version = u16::from_le_bytes(self.buf[4..6].try_into().unwrap());
                    if version != 1 {
                        return Err(DecodeError::BadVersion(version));
                    }
                    let precision = self.buf[6];
                    if precision as usize != T::BYTES {
                        return Err(DecodeError::BadPrecision(precision));
                    }
                    let ndim = self.buf[7] as usize;
                    if ndim == 0 || ndim > mg_grid::MAX_DIMS {
                        return Err(DecodeError::BadShape(format!("ndim = {ndim}")));
                    }
                    let need = 8 + 8 * ndim + 4;
                    if self.buf.len() < need {
                        break;
                    }
                    let mut dims = Vec::with_capacity(ndim);
                    for d in 0..ndim {
                        let off = 8 + 8 * d;
                        let v = u64::from_le_bytes(self.buf[off..off + 8].try_into().unwrap());
                        if v == 0 {
                            return Err(DecodeError::BadShape("zero extent".into()));
                        }
                        dims.push(v as usize);
                    }
                    if dims.len() > mg_grid::MAX_DIMS {
                        return Err(DecodeError::BadShape("too many dims".into()));
                    }
                    let shape = Shape::new(&dims);
                    let hier =
                        Hierarchy::new(shape).map_err(|e| DecodeError::BadShape(e.to_string()))?;
                    let stored = u32::from_le_bytes(
                        self.buf[8 + 8 * ndim..8 + 8 * ndim + 4].try_into().unwrap(),
                    ) as usize;
                    if stored == 0 || stored > hier.nlevels() + 1 {
                        return Err(DecodeError::BadShape(format!("{stored} classes")));
                    }
                    self.buf.drain(..need);
                    self.hier = Some(hier);
                    self.stored = stored;
                    self.state = State::ClassLen { class: 0 };
                }
                State::ClassLen { class } => {
                    let class = *class;
                    if class >= self.stored {
                        self.state = State::Done;
                        continue;
                    }
                    if self.buf.len() < 8 {
                        break;
                    }
                    let got = u64::from_le_bytes(self.buf[..8].try_into().unwrap()) as usize;
                    let hier = self.hier.as_ref().unwrap();
                    let expect = if class == 0 {
                        hier.level_len(0)
                    } else {
                        hier.class_len(class)
                    };
                    if got != expect {
                        return Err(DecodeError::LengthMismatch { class, expect, got });
                    }
                    self.buf.drain(..8);
                    self.state = State::ClassBody { class, expect };
                }
                State::ClassBody { class, expect } => {
                    let (class, expect) = (*class, *expect);
                    let need = expect * T::BYTES;
                    if self.buf.len() < need {
                        break;
                    }
                    let mut vals = Vec::with_capacity(expect);
                    for i in 0..expect {
                        let off = i * T::BYTES;
                        let v = if T::BYTES == 4 {
                            T::from_f64(f32::from_le_bytes(
                                self.buf[off..off + 4].try_into().unwrap(),
                            ) as f64)
                        } else {
                            T::from_f64(f64::from_le_bytes(
                                self.buf[off..off + 8].try_into().unwrap(),
                            ))
                        };
                        vals.push(v);
                    }
                    self.buf.drain(..need);
                    self.classes.push(Some(vals));
                    self.state = State::ClassLen { class: class + 1 };
                }
                State::Done => break,
            }
        }
        Ok(self.classes.len())
    }

    /// Current best representation: ready classes as-is, the rest (and any
    /// classes moved out via [`StreamingDecoder::take_class`])
    /// zero-filled. `None` until the header has arrived.
    pub fn snapshot(&self) -> Option<Refactored<T>> {
        let hier = self.hier.as_ref()?;
        let mut classes = Vec::with_capacity(hier.nlevels() + 1);
        for k in 0..=hier.nlevels() {
            let expect = if k == 0 {
                hier.level_len(0)
            } else {
                hier.class_len(k)
            };
            match self.classes.get(k) {
                Some(Some(c)) => classes.push(c.clone()),
                _ => classes.push(vec![T::ZERO; expect]),
            }
        }
        Some(Refactored::from_classes(hier.clone(), classes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progressive::reconstruct_prefix;
    use crate::serialize::encode;
    use mg_core::Refactorer;
    use mg_grid::NdArray;

    fn payload() -> (Vec<u8>, NdArray<f64>, Refactored<f64>) {
        let shape = Shape::d2(17, 17);
        let orig = NdArray::from_fn(shape, |i| ((i[0] * 7 + i[1] * 5) % 13) as f64 * 0.21);
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut d = orig.clone();
        r.decompose(&mut d);
        let hier = r.hierarchy().clone();
        let refac = Refactored::from_array(&d, &hier);
        (encode(&refac).to_vec(), orig, refac)
    }

    #[test]
    fn byte_at_a_time_matches_batch_decoder() {
        let (bytes, _, refac) = payload();
        let mut dec = StreamingDecoder::<f64>::new();
        for b in &bytes {
            dec.push(std::slice::from_ref(b)).unwrap();
        }
        assert!(dec.is_complete());
        assert_eq!(dec.classes_ready(), refac.num_classes());
        let snap = dec.snapshot().unwrap();
        for k in 0..refac.num_classes() {
            assert_eq!(snap.class(k), refac.class(k));
        }
    }

    #[test]
    fn classes_become_ready_monotonically() {
        let (bytes, _, refac) = payload();
        let mut dec = StreamingDecoder::<f64>::new();
        let mut last = 0;
        for chunk in bytes.chunks(13) {
            let ready = dec.push(chunk).unwrap();
            assert!(ready >= last);
            last = ready;
        }
        assert_eq!(last, refac.num_classes());
    }

    #[test]
    fn partial_stream_gives_usable_snapshot() {
        let (bytes, orig, _) = payload();
        let mut dec = StreamingDecoder::<f64>::new();
        // Feed 40% of the payload.
        dec.push(&bytes[..bytes.len() * 2 / 5]).unwrap();
        assert!(!dec.is_complete());
        let ready = dec.classes_ready();
        assert!(ready >= 1, "some classes should be complete");
        let snap = dec.snapshot().unwrap();
        let shape = orig.shape();
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let approx = reconstruct_prefix(&snap, snap.num_classes(), &mut r);
        // A valid (lossy) approximation, not garbage.
        assert!(approx.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn take_class_moves_classes_out_incrementally() {
        let (bytes, _, refac) = payload();
        let mut dec = StreamingDecoder::<f64>::new();
        let mut taken = 0usize;
        for chunk in bytes.chunks(7) {
            dec.push(chunk).unwrap();
            // Drain every class the moment it completes.
            while taken < dec.classes_ready() {
                let vals = dec.take_class(taken).expect("ready class");
                assert_eq!(vals.as_slice(), refac.class(taken), "class {taken}");
                taken += 1;
            }
        }
        assert_eq!(taken, refac.num_classes());
        assert_eq!(dec.classes_stored(), Some(refac.num_classes()));
        // A second take returns None; the snapshot zero-fills taken classes.
        assert!(dec.take_class(0).is_none());
        let snap = dec.snapshot().unwrap();
        assert!(snap.class(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn classes_stored_reports_prefix_headers() {
        let (_, _, refac) = payload();
        let bytes = crate::serialize::encode_prefix(&refac, 2);
        let mut dec = StreamingDecoder::<f64>::new();
        assert_eq!(dec.classes_stored(), None);
        dec.push(&bytes).unwrap();
        assert_eq!(dec.classes_stored(), Some(2));
        assert!(dec.is_complete());
        assert_eq!(dec.classes_ready(), 2);
    }

    #[test]
    fn header_errors_are_reported_early() {
        let (mut bytes, _, _) = payload();
        bytes[0] ^= 0xAA;
        let mut dec = StreamingDecoder::<f64>::new();
        assert!(matches!(
            dec.push(&bytes[..16]),
            Err(DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn snapshot_before_header_is_none() {
        let dec = StreamingDecoder::<f64>::new();
        assert!(dec.snapshot().is_none());
        assert_eq!(dec.classes_ready(), 0);
    }

    #[test]
    fn wrong_precision_rejected() {
        let (bytes, _, _) = payload();
        let mut dec = StreamingDecoder::<f32>::new();
        assert!(matches!(
            dec.push(&bytes),
            Err(DecodeError::BadPrecision(8))
        ));
    }
}
