//! Per-class norms and reconstruction-error indicators.
//!
//! The multilevel theory (Ainsworth et al.) relates the error of a prefix
//! reconstruction to the norms of the dropped coefficient classes. We
//! expose the measured per-class norms plus a conservative *indicator*
//! that lets a producer pick a prefix for a target accuracy without
//! running the full reconstruction; tests validate the indicator
//! dominates the measured error on a family of fields.

use crate::classes::Refactored;
use mg_grid::Real;

/// Norms of one coefficient class.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ClassNorms {
    /// Class index (0 = coarsest nodal values).
    pub class: usize,
    /// Number of values in the class.
    pub len: usize,
    /// Max absolute value.
    pub linf: f64,
    /// Euclidean norm.
    pub l2: f64,
}

/// Compute the norms of every class.
pub fn class_norms<T: Real>(refac: &Refactored<T>) -> Vec<ClassNorms> {
    refac
        .classes()
        .iter()
        .enumerate()
        .map(|(k, c)| {
            let linf = c.iter().map(|v| v.abs().to_f64()).fold(0.0, f64::max);
            let l2 = c
                .iter()
                .map(|v| v.to_f64() * v.to_f64())
                .sum::<f64>()
                .sqrt();
            ClassNorms {
                class: k,
                len: c.len(),
                linf,
                l2,
            }
        })
        .collect()
}

/// Empirical safety factor of [`linf_indicator`]: multilinear
/// interpolation is max-norm non-expansive, so a dropped class's error
/// accumulates *linearly* through the remaining recomposition steps; the
/// only amplification comes from the correction operator
/// `M_{l-1}^{-1} R_l M_l`, whose ∞-norm is bounded by a modest constant on
/// shape-regular grids. κ = 8 covers it with slack in 1–3 dimensions
/// (validated by `tests::indicator_dominates_measured_error` across
/// smooth, kinked, and discontinuous fields).
pub const LINF_INDICATOR_KAPPA: f64 = 8.0;

/// Conservative L∞ indicator for reconstructing with classes `0..count`:
/// `κ · Σ_{l >= count} ||C_l||_∞`. An *indicator*, not a proven bound —
/// see [`LINF_INDICATOR_KAPPA`].
pub fn linf_indicator<T: Real>(refac: &Refactored<T>, count: usize) -> f64 {
    let norms = class_norms(refac);
    norms
        .iter()
        .skip(count.max(1))
        .map(|n| n.linf * LINF_INDICATOR_KAPPA)
        .sum()
}

/// Smallest prefix whose [`linf_indicator`] is below `target`; falls back
/// to all classes if the target is unreachable.
pub fn classes_for_accuracy<T: Real>(refac: &Refactored<T>, target_linf: f64) -> usize {
    for k in 1..=refac.num_classes() {
        if linf_indicator(refac, k) <= target_linf {
            return k;
        }
    }
    refac.num_classes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progressive::reconstruct_prefix;
    use mg_core::Refactorer;
    use mg_grid::{CoordSet, NdArray, Shape};

    fn setup(
        shape: Shape,
        f: impl Fn(&[f64]) -> f64,
    ) -> (NdArray<f64>, Refactored<f64>, Refactorer<f64>) {
        let coords = CoordSet::<f64>::uniform(shape);
        let orig = NdArray::sample(shape, coords.as_vecs(), f);
        let mut r = Refactorer::with_coords(shape, coords).unwrap();
        let mut data = orig.clone();
        r.decompose(&mut data);
        let hier = r.hierarchy().clone();
        (orig, Refactored::from_array(&data, &hier), r)
    }

    #[test]
    fn norms_have_expected_shape() {
        let (_, refac, _) = setup(Shape::d2(17, 17), |x| x[0] * x[1]);
        let norms = class_norms(&refac);
        assert_eq!(norms.len(), refac.num_classes());
        assert_eq!(norms[0].len, 4);
        for n in &norms {
            assert!(n.linf.is_finite() && n.l2.is_finite());
            assert!(n.l2 >= n.linf || n.len <= 1 || n.linf == 0.0);
        }
    }

    #[test]
    fn smooth_fields_have_decaying_class_norms() {
        let (_, refac, _) = setup(Shape::d1(257), |x| (3.0 * x[0]).sin());
        let norms = class_norms(&refac);
        // For a C^2 function coefficients decay ~4x per level.
        for w in norms[2..].windows(2) {
            assert!(
                w[1].linf < w[0].linf,
                "norms should decay: {:?}",
                norms.iter().map(|n| n.linf).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn indicator_dominates_measured_error() {
        type Field = Box<dyn Fn(&[f64]) -> f64>;
        let fields: Vec<Field> = vec![
            Box::new(|x: &[f64]| (4.0 * x[0]).sin() * (3.0 * x[1]).cos()),
            Box::new(|x: &[f64]| (x[0] - 0.3).abs() + x[1] * x[1]),
            Box::new(|x: &[f64]| if x[0] > 0.5 { 1.0 } else { 0.0 }),
        ];
        for f in fields {
            let (orig, refac, mut r) = setup(Shape::d2(33, 33), f);
            for k in 1..=refac.num_classes() {
                let rec = reconstruct_prefix(&refac, k, &mut r);
                let measured = mg_grid::real::max_abs_diff(rec.as_slice(), orig.as_slice());
                let ind = linf_indicator(&refac, k);
                assert!(
                    measured <= ind + 1e-9,
                    "k={k}: measured {measured} > indicator {ind}"
                );
            }
        }
    }

    #[test]
    fn accuracy_selection_meets_target() {
        let (orig, refac, mut r) = setup(Shape::d2(129, 129), |x| (5.0 * x[0] * x[1]).sin());
        let target = 2e-2;
        let k = classes_for_accuracy(&refac, target);
        let rec = reconstruct_prefix(&refac, k, &mut r);
        let measured = mg_grid::real::max_abs_diff(rec.as_slice(), orig.as_slice());
        assert!(measured <= target, "measured {measured} > target {target}");
        assert!(k < refac.num_classes(), "should not need every class");
    }

    #[test]
    fn full_prefix_indicator_is_zero() {
        let (_, refac, _) = setup(Shape::d1(33), |x| x[0].exp());
        assert_eq!(linf_indicator(&refac, refac.num_classes()), 0.0);
    }
}
