//! Shared sweep logic for the table/figure harnesses.

use gpu_sim::cpu::CpuSpec;
use gpu_sim::device::DeviceSpec;
use mg_gpu::breakdown::SimBreakdown;
use mg_gpu::kernels::Variant;
use mg_gpu::sim::{cpu_decompose, sim_decompose};
use mg_grid::{Hierarchy, Shape};

/// Per-kernel speedup statistics over a range of grid sizes
/// (Tables II/III).
#[derive(Clone, Debug)]
pub struct KernelSpeedups {
    pub kernel: &'static str,
    pub max: f64,
    pub min: f64,
    pub avg: f64,
}

fn pick(b: &SimBreakdown, k: usize) -> f64 {
    [b.cc, b.mm, b.tm, b.sc][k]
}

/// Compute per-kernel GPU-vs-serial-CPU speedups across the given grids
/// (each grid contributes one sample: total kernel time across all levels
/// and axes).
pub fn kernel_speedup_rows(
    grids: &[Vec<usize>],
    dev: &DeviceSpec,
    cpu: &CpuSpec,
) -> Vec<KernelSpeedups> {
    const NAMES: [&str; 4] = [
        "Comp. Coefficients",
        "Mass Matrix Mult.",
        "Trans. Matrix Mult.",
        "Solve Correction",
    ];
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for dims in grids {
        let hier = Hierarchy::new(Shape::new(dims)).expect("dyadic grid");
        let g = sim_decompose(&hier, 8, dev, Variant::Framework);
        let c = cpu_decompose(&hier, 8, cpu);
        #[allow(clippy::needless_range_loop)]
        for k in 0..4 {
            let gt = pick(&g, k);
            let ct = pick(&c, k);
            if gt > 0.0 && ct > 0.0 {
                samples[k].push(ct / gt);
            }
        }
    }
    (0..4)
        .map(|k| {
            let s = &samples[k];
            KernelSpeedups {
                kernel: NAMES[k],
                max: s.iter().cloned().fold(f64::MIN, f64::max),
                min: s.iter().cloned().fold(f64::MAX, f64::min),
                avg: s.iter().sum::<f64>() / s.len().max(1) as f64,
            }
        })
        .collect()
}

/// Square/cubic dyadic grid sweeps used throughout the paper's §IV.
pub fn dyadic_squares(min_exp: u32, max_exp: u32) -> Vec<Vec<usize>> {
    (min_exp..=max_exp)
        .map(|e| vec![(1usize << e) + 1, (1usize << e) + 1])
        .collect()
}

pub fn dyadic_cubes(min_exp: u32, max_exp: u32) -> Vec<Vec<usize>> {
    (min_exp..=max_exp)
        .map(|e| vec![(1usize << e) + 1; 3])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes() {
        assert_eq!(
            dyadic_squares(2, 4),
            vec![vec![5, 5], vec![9, 9], vec![17, 17]]
        );
        assert_eq!(dyadic_cubes(2, 3), vec![vec![5, 5, 5], vec![9, 9, 9]]);
    }

    #[test]
    fn speedups_ordered_sensibly() {
        let rows = kernel_speedup_rows(
            &dyadic_squares(5, 9),
            &DeviceSpec::v100(),
            &CpuSpec::power9(),
        );
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.min <= r.avg && r.avg <= r.max, "{r:?}");
            assert!(r.max > 1.0, "{} never wins?", r.kernel);
        }
        // The paper's qualitative finding: the solve gains least.
        let solve = rows[3].avg;
        let mass = rows[1].avg;
        assert!(solve < mass, "solve {solve} should trail mass {mass}");
    }
}
