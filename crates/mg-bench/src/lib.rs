//! Shared helpers for the table/figure harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index); this library holds the common sweep
//! and formatting code.

pub mod sweeps;
pub mod table;
