//! Tables II & III: per-kernel speedups of the GPU designs over the
//! serial CPU baseline, across grid-size sweeps.
//!
//! `--device rtx2080ti` reproduces Table II (desktop: RTX 2080 Ti vs one
//! i7-9700K core); `--device v100` reproduces Table III (Summit: V100 vs
//! one POWER9 core). Default: both.

use gpu_sim::cpu::CpuSpec;
use gpu_sim::device::DeviceSpec;
use mg_bench::sweeps::{dyadic_cubes, dyadic_squares, kernel_speedup_rows};
use mg_bench::table::fmt_x;

fn run(dev: &DeviceSpec, cpu: &CpuSpec, paper_table: &str) {
    println!("== {paper_table}: {} vs serial {} ==", dev.name, cpu.name);
    println!(
        "{:<12} {:<22} {:>10} {:>10} {:>10}",
        "Grid Size", "Kernel", "Max", "Min", "Avg."
    );

    // 3-D sweep 5^3..513^3 (coefficients only, as in the paper's first row
    // block).
    let rows3 = kernel_speedup_rows(&dyadic_cubes(2, 9), dev, cpu);
    let cc3 = &rows3[0];
    println!(
        "{:<12} {:<22} {:>10} {:>10} {:>10}",
        "5^3-513^3",
        cc3.kernel,
        fmt_x(cc3.max),
        fmt_x(cc3.min),
        fmt_x(cc3.avg)
    );

    // 2-D sweep 5^2..8193^2 (all four kernels).
    let rows2 = kernel_speedup_rows(&dyadic_squares(2, 13), dev, cpu);
    for (i, r) in rows2.iter().enumerate() {
        println!(
            "{:<12} {:<22} {:>10} {:>10} {:>10}",
            if i == 0 { "5^2-8193^2" } else { "" },
            r.kernel,
            fmt_x(r.max),
            fmt_x(r.min),
            fmt_x(r.avg)
        );
    }
    println!();
}

fn main() {
    let arg = std::env::args().nth(2).or_else(|| std::env::args().nth(1));
    let which = arg.as_deref().unwrap_or("both");
    if which.contains("rtx") || which == "both" {
        run(
            &DeviceSpec::rtx2080ti(),
            &CpuSpec::i7_9700k(),
            "Table II (GPU-accelerated desktop)",
        );
        println!(
            "paper Table II anchors: CC(2D) max 775x min 47x avg 317x; MM max 2406x avg 1155x;"
        );
        println!("                        TM max 791x avg 407x; SC max 506x avg 317x\n");
    }
    if which.contains("v100") || which == "both" {
        run(
            &DeviceSpec::v100(),
            &CpuSpec::power9(),
            "Table III (Summit@ORNL)",
        );
        println!(
            "paper Table III anchors: CC(2D) max 2919x min 61x avg 1045x; MM max 2142x avg 1139x;"
        );
        println!("                         TM max 1950x avg 950x; SC max 330x min 154x avg 250x");
    }
}
