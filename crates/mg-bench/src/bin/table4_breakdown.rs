//! Table IV: end-to-end time breakdown per kernel category for
//! decomposition and recomposition, serial CPU vs GPU, on 2-D 8193^2 and
//! 3-D 513^3 (Summit models).

use gpu_sim::cpu::CpuSpec;
use gpu_sim::device::DeviceSpec;
use mg_bench::table::fmt_secs;
use mg_gpu::breakdown::SimBreakdown;
use mg_gpu::kernels::Variant;
use mg_gpu::sim::{cpu_decompose, cpu_recompose, sim_decompose, sim_recompose};
use mg_grid::{Hierarchy, Shape};

fn print_pair(label: &str, cpu: &SimBreakdown, gpu: &SimBreakdown) {
    println!("-- {label} --");
    println!(
        "{:>4} {:>14} {:>7} {:>14} {:>7}",
        "op", "serial CPU", "%", "GPU", "%"
    );
    for ((l, ct, cp), (_, gt, gp)) in cpu.rows().into_iter().zip(gpu.rows()) {
        println!(
            "{:>4} {:>14} {:>6.1}% {:>14} {:>6.1}%",
            l,
            fmt_secs(ct),
            cp,
            fmt_secs(gt),
            gp
        );
    }
    println!(
        "{:>4} {:>14} {:>7} {:>14}",
        "sum",
        fmt_secs(cpu.total()),
        "",
        fmt_secs(gpu.total())
    );
    println!();
}

fn main() {
    let dev = DeviceSpec::v100();
    let cpu = CpuSpec::power9();

    for (name, dims) in [
        ("2D (8193 x 8193)", vec![8193usize, 8193]),
        ("3D (513 x 513 x 513)", vec![513usize, 513, 513]),
    ] {
        let hier = Hierarchy::new(Shape::new(&dims)).unwrap();
        println!("== Table IV, {name} ==");
        print_pair(
            "Decomposition",
            &cpu_decompose(&hier, 8, &cpu),
            &sim_decompose(&hier, 8, &dev, Variant::Framework),
        );
        print_pair(
            "Recomposition",
            &cpu_recompose(&hier, 8, &cpu),
            &sim_recompose(&hier, 8, &dev, Variant::Framework),
        );
    }
    println!("paper anchors (decomposition): 2D CPU 15.07s/GPU 48.2ms; 3D CPU 25.70s/GPU 631.6ms;");
    println!("CPU shares roughly CC 17% MM 21% TM 19-20% SC 18% MC 23-26%; GPU 3D is SC-dominated (~50%).");
}
