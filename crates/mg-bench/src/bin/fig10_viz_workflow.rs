//! Figure 10 (+ the §V-A accuracy claim): the visualization workflow.
//!
//! Part 1 — I/O cost of writing/reading a 4 TB refactored dataset through
//! the parallel-FS model with 4096 writers / 512 readers, for every class
//! count, with GPU-rate vs CPU-rate refactoring (the per-process rates
//! come from the same device models the other harnesses use).
//!
//! Part 2 — the feature-accuracy claim (~95% iso-surface-area accuracy
//! from 3 of 10 classes), *measured* on real Gray–Scott data with the
//! marching-tetrahedra extractor.

use gpu_sim::cpu::CpuSpec;
use gpu_sim::device::DeviceSpec;
use mg_core::{ExecPlan, Refactorer};
use mg_gpu::kernels::Variant;
use mg_gpu::sim::{cpu_decompose, sim_decompose};
use mg_grid::{Hierarchy, Shape};
use mg_io::{StorageTier, VizWorkflow};
use mg_refactor::classes::Refactored;
use mg_refactor::progressive::reconstruct_prefix;
use mg_workloads::gray_scott::{GrayScott, GrayScottParams};
use mg_workloads::isosurface::{isosurface_accuracy, isosurface_area};

fn main() {
    io_cost_part();
    accuracy_part();
}

fn io_cost_part() {
    // Per-process refactoring rates from the device models (2-D tiles of
    // the 4 TB variable, ~0.5 GB per process).
    let hier = Hierarchy::new(Shape::d2(8193, 8193)).unwrap();
    let bytes = (8193.0f64 * 8193.0) * 8.0;
    let gpu_bps = bytes / sim_decompose(&hier, 8, &DeviceSpec::v100(), Variant::Framework).total();
    let cpu_bps = bytes / cpu_decompose(&hier, 8, &CpuSpec::power9()).total();

    let base = VizWorkflow {
        total_bytes: 4 << 40,
        nclasses: 10,
        ndim: 3,
        writers: 4096,
        readers: 512,
        refactor_bps_per_proc: gpu_bps,
        tier: StorageTier::parallel_fs(),
    };
    let cpu_wf = VizWorkflow {
        refactor_bps_per_proc: cpu_bps,
        ..base.clone()
    };

    println!("== Fig. 10: 4 TB, 4096 writers / 512 readers, parallel FS ==");
    println!(
        "(modeled per-process refactoring: GPU {:.2} GB/s, serial CPU {:.1} MB/s)\n",
        gpu_bps / 1e9,
        cpu_bps / 1e6
    );
    println!(
        "{:>7} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "classes", "GPU write", "GPU read", "GPU total", "CPU write", "CPU read", "CPU total"
    );
    for k in (1..=10).rev() {
        let gw = base.write_cost(k);
        let gr = base.read_cost(k);
        let cw = cpu_wf.write_cost(k);
        let cr = cpu_wf.read_cost(k);
        println!(
            "{:>7} | {:>9.1}s {:>9.1}s {:>9.1}s | {:>9.1}s {:>9.1}s {:>9.1}s",
            k,
            gw.total(),
            gr.total(),
            gw.total() + gr.total(),
            cw.total(),
            cr.total(),
            cw.total() + cr.total()
        );
    }
    let reduction = 1.0 - base.total_cost(3) / base.total_cost(10);
    println!(
        "\nGPU refactoring + 3 classes: {:.0}% total I/O cost reduction (paper: ~66%\n\
         with its storage share; the shape — big win with GPU, flat with CPU — holds).\n",
        100.0 * reduction
    );
}

fn accuracy_part() {
    println!("== §V-A feature accuracy: iso-surface area vs classes (measured) ==");
    let mut gs = GrayScott::new(96, GrayScottParams::default());
    gs.step(600);
    let field = gs.u_field_dyadic(65);
    let iso = 0.5;
    let area = isosurface_area(&field, iso);
    println!("Gray–Scott 65^3, iso u={iso}: true area {area:.1}\n");

    let shape = field.shape();
    let mut r = Refactorer::<f64>::new(shape)
        .unwrap()
        .plan(ExecPlan::parallel());
    let mut data = field.clone();
    r.decompose(&mut data);
    let hier = r.hierarchy().clone();
    let refac = Refactored::from_array(&data, &hier);

    println!("{:>7} {:>9} {:>12}", "classes", "bytes%", "area accuracy");
    for k in 1..=refac.num_classes() {
        let rec = reconstruct_prefix(&refac, k, &mut r);
        let acc = isosurface_accuracy(&field, &rec, iso);
        println!(
            "{:>7} {:>8.2}% {:>11.1}%",
            k,
            100.0 * refac.prefix_bytes(k) as f64 / refac.total_bytes() as f64,
            100.0 * acc
        );
    }
    println!("\npaper claim: ~95% accuracy for the feature with 3 of 10 classes; here the");
    println!("hierarchy is shallower (7 classes at 65^3) but the same early-accuracy shape holds.");
}
