//! Figure 7: mass-matrix-multiplication throughput (GB/s) per
//! decomposition level of a 4097x4097 grid, for three designs:
//! serial CPU, naive GPU (vector-wise, unpacked), and the paper's
//! linear-processing framework (packed).
//!
//! The paper's qualitative claims this must reproduce: the CPU and naive
//! GPU curves *fall* as the level decreases (stride growth), while the
//! framework sustains high throughput until the grids get too small to
//! fill the device.

use gpu_sim::cpu::{cpu_time, CpuSpec};
use gpu_sim::device::DeviceSpec;
use gpu_sim::timing::kernel_time;
use mg_gpu::cpu_kernels::{cpu_mass, CpuSweep};
use mg_gpu::kernels::{mass_profile, Variant};
use mg_grid::{Axis, Hierarchy, Shape};

fn main() {
    let full = Shape::d2(4097, 4097);
    let hier = Hierarchy::new(full).unwrap();
    let dev = DeviceSpec::v100();
    let cpu = CpuSpec::power9();
    let full_strides = full.strides();

    println!("== Fig. 7: mass matrix multiplication on 4097^2 (one V100 / one POWER9 core) ==");
    println!(
        "{:>5} {:>10} {:>16} {:>16} {:>16}",
        "level", "grid", "CPU GB/s", "naive GPU GB/s", "framework GB/s"
    );

    for l in (1..=hier.nlevels()).rev() {
        let ld = hier.level_dims(l);
        let shape = ld.shape;
        let step = ld.step[0] as u64;
        let n = shape.len() as f64;
        // One application = both axes (the per-level work of Algorithm 3,
        // lines 6 & 9). Useful traffic: read + write each element per axis.
        let useful = 2.0 * 2.0 * n * 8.0;

        // Serial CPU: walks the unpacked grid.
        let mut cpu_t = 0.0;
        #[allow(clippy::needless_range_loop)]
        for d in 0..2 {
            let sweep = CpuSweep {
                shape,
                axis: Axis(d),
                walk_stride: step * full_strides[d] as u64,
                embed_extent: full.dim(Axis(d)) as u64,
                elem: 8,
            };
            cpu_t += cpu_time(&cpu, &cpu_mass(&sweep));
        }

        // Naive GPU: vector-wise on the unpacked grid.
        let mut naive_t = 0.0;
        for d in 0..2 {
            naive_t += kernel_time(&dev, &mass_profile(shape, Axis(d), step, 8, Variant::Naive));
        }

        // Linear-processing framework: packed, unit stride.
        let mut fw_t = 0.0;
        for d in 0..2 {
            fw_t += kernel_time(
                &dev,
                &mass_profile(shape, Axis(d), 1, 8, Variant::Framework),
            );
        }

        println!(
            "{:>5} {:>10} {:>16.4} {:>16.4} {:>16.4}",
            l,
            format!("{}^2", shape.dim(Axis(0))),
            useful / cpu_t / 1e9,
            useful / naive_t / 1e9,
            useful / fw_t / 1e9,
        );
    }

    println!();
    println!("paper shape check: CPU and naive GPU decay roughly 2x per level; the framework");
    println!("sustains hundreds of GB/s on large levels and only degrades on tiny grids.");
}
