//! Internal calibration: compare simulated numbers against the paper's
//! anchors (Table IV totals, Table V speedups).
use gpu_sim::cpu::CpuSpec;
use gpu_sim::device::DeviceSpec;
use mg_gpu::kernels::Variant;
use mg_gpu::sim::{cpu_decompose, sim_decompose};
use mg_grid::{Hierarchy, Shape};

fn main() {
    let v100 = DeviceSpec::v100();
    let p9 = CpuSpec::power9();

    println!("== Table IV anchors (Summit, decomposition) ==");
    let h2 = Hierarchy::new(Shape::d2(8193, 8193)).unwrap();
    let c2 = cpu_decompose(&h2, 8, &p9);
    let g2 = sim_decompose(&h2, 8, &v100, Variant::Framework);
    println!(
        "2D 8193^2 CPU total {:.2}s (paper 15.07s) GPU total {:.4}s (paper 0.0482s)",
        c2.total(),
        g2.total()
    );
    for (l, t, pct) in c2.rows() {
        println!("  CPU {l}: {t:.2}s {pct:.1}%");
    }
    for (l, t, pct) in g2.rows() {
        println!("  GPU {l}: {:.2}ms {pct:.1}%", t * 1e3);
    }

    let h3 = Hierarchy::new(Shape::d3(513, 513, 513)).unwrap();
    let c3 = cpu_decompose(&h3, 8, &p9);
    let g3 = sim_decompose(&h3, 8, &v100, Variant::Framework);
    println!(
        "3D 513^3 CPU total {:.2}s (paper 25.70s) GPU total {:.4}s (paper 0.6316s)",
        c3.total(),
        g3.total()
    );
    for (l, t, pct) in c3.rows() {
        println!("  CPU {l}: {t:.2}s {pct:.1}%");
    }
    for (l, t, pct) in g3.rows() {
        println!("  GPU {l}: {:.2}ms {pct:.1}%", t * 1e3);
    }

    println!("== Table V anchors (Summit, decomposition speedups) ==");
    for n in [33usize, 129, 513, 2049, 8193] {
        let h = Hierarchy::new(Shape::d2(n, n)).unwrap();
        let s = cpu_decompose(&h, 8, &p9).total()
            / sim_decompose(&h, 8, &v100, Variant::Framework).total();
        println!("2D {n}^2: {s:.2}x");
    }
    println!("(paper: 33^2=0.30x 129^2=2.29x 513^2=19.46x 2049^2=108.77x 8193^2=311.18x)");
    for n in [33usize, 129, 513] {
        let h = Hierarchy::new(Shape::d3(n, n, n)).unwrap();
        let s = cpu_decompose(&h, 8, &p9).total()
            / sim_decompose(&h, 8, &v100, Variant::Framework).total();
        println!("3D {n}^3: {s:.2}x");
    }
    println!("(paper: 33^3=1.14x 129^3=16.20x 513^3=103.41x)");
}
