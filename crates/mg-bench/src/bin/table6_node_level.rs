//! Table VI: all GPUs vs all CPU cores on one machine.
//!
//! The paper sizes the node-level inputs so the work splits evenly
//! (desktop: 1 RTX 2080 Ti vs 8 i7 cores; Summit node: 6 V100s vs 42
//! POWER9 cores). We model the same construction with partitions of
//! dyadic 8193^2 (2-D) and 513^3 (3-D) tiles.

use mg_bench::table::fmt_x;
use mg_cluster::NodeComparison;

fn main() {
    println!("== Table VI: all GPUs vs all CPU cores ==");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "platform", "2D dec", "2D rec", "3D dec", "3D rec"
    );

    // Partition counts mirror the paper's input scaling: enough tiles to
    // keep every core busy.
    for (name, node, parts) in [
        ("GPU-accelerated desktop", NodeComparison::desktop(), 8usize),
        ("Summit@ORNL (1 node)", NodeComparison::summit_node(), 42),
    ] {
        let d2 = node.speedup(&[8193, 8193], parts, false);
        let r2 = node.speedup(&[8193, 8193], parts, true);
        let d3 = node.speedup(&[513, 513, 513], parts, false);
        let r3 = node.speedup(&[513, 513, 513], parts, true);
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>10}",
            name,
            fmt_x(d2),
            fmt_x(r2),
            fmt_x(d3),
            fmt_x(r3)
        );
    }

    println!();
    println!("paper anchors: desktop 2D 12.79x/14.57x, 3D 8.00x/11.39x;");
    println!("               Summit  2D 44.45x/47.25x, 3D 14.77x/19.42x.");
    println!("shape checks: node-level speedups are ~an order of magnitude below the");
    println!("single-core numbers (the CPU side now uses every core), Summit > desktop,");
    println!("2D > 3D, recomposition >= decomposition.");
}
