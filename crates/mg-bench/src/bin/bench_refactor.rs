//! `bench_refactor` — machine-readable refactoring benchmark.
//!
//! Sweeps the execution-plan matrix (threading × layout, all four layouts)
//! over a set of grid shapes, timing one decompose + recompose per cell
//! and collecting the per-kernel wall-clock breakdown (the paper's
//! Table IV categories), then writes the results as JSON so the perf
//! trajectory can be tracked across commits (`BENCH_*.json`).
//!
//! ```text
//! bench_refactor [--quick] [--out PATH] [--tile N] [--tile-sweep N,N,..]
//!                [--compare BASELINE.json] [--tolerance PCT]
//! ```
//!
//! * `--quick` restricts the sweep to three shapes (two small plus one
//!   realistic 129³ volume) at best-of-2 reps (the CI smoke
//!   configuration).
//! * `--tile N` sets the tile size used by the tiled-layout cells
//!   (default `mg_kernels::DEFAULT_TILE`).
//! * `--tile-sweep 8,32,128` adds parallel tiled cells at each listed tile
//!   size (rows carry a `"tile"` field).
//! * `--compare BASELINE.json` re-reads a previous run and **exits
//!   nonzero** if any matching cell's per-kernel time regressed by more
//!   than `--tolerance` percent (default 15) beyond a 2 ms noise floor —
//!   the per-commit regression gate. Baselines are only comparable on the
//!   machine that produced them; cross-machine comparisons need a wide
//!   tolerance.

use mg_core::{ExecPlan, Layout, Refactorer, Threading};
use mg_grid::{NdArray, Shape};
use mg_obs::{HistView, Histogram};
use std::fmt::Write as _;
use std::time::Instant;

fn field(shape: Shape) -> NdArray<f64> {
    NdArray::from_fn(shape, |i| {
        i.iter()
            .enumerate()
            .map(|(d, &v)| ((v * (d + 7)) % 31) as f64 * 0.06)
            .sum()
    })
}

fn shape_tag(shape: Shape) -> String {
    shape
        .as_slice()
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join("x")
}

/// One benchmark cell, serializable to a JSON row and re-parsable for
/// `--compare`.
struct Row {
    shape: String,
    layout: String,
    threading: String,
    tile: Option<usize>,
    decompose_ns: u128,
    recompose_ns: u128,
    /// Per-rep wall times (µs) — the spread behind the best-of numbers.
    decompose_us: HistView,
    recompose_us: HistView,
    kernels: Vec<(String, u128)>,
}

impl Row {
    fn key(&self) -> String {
        format!(
            "{}/{}{}/{}",
            self.shape,
            self.layout,
            self.tile.map(|t| format!(":{t}")).unwrap_or_default(),
            self.threading
        )
    }

    fn to_json(&self) -> String {
        let mut kernels = String::new();
        for (i, (label, ns)) in self.kernels.iter().enumerate() {
            if i > 0 {
                kernels.push_str(", ");
            }
            write!(kernels, "\"{label}\": {ns}").unwrap();
        }
        let tile = self
            .tile
            .map(|t| format!("\"tile\": {t}, "))
            .unwrap_or_default();
        format!(
            "    {{\"shape\": \"{}\", \"layout\": \"{}\", {}\"threading\": \"{}\", \
             \"decompose_ns\": {}, \"recompose_ns\": {}, \
             \"decompose_us\": {}, \"recompose_us\": {}, \"kernels\": {{{}}}}}",
            self.shape,
            self.layout,
            tile,
            self.threading,
            self.decompose_ns,
            self.recompose_ns,
            self.decompose_us.to_json(),
            self.recompose_us.to_json(),
            kernels
        )
    }
}

/// Time one plan on one shape.
fn bench_cell(shape: Shape, data: &NdArray<f64>, plan: ExecPlan, reps: usize) -> Row {
    let mut r = Refactorer::<f64>::new(shape).unwrap().plan(plan);
    // Warm-up pass allocates the working buffers.
    let mut warm = data.clone();
    r.decompose(&mut warm);
    r.recompose(&mut warm);
    let _ = r.take_times();

    let mut best_dec = u128::MAX;
    let mut best_rec = u128::MAX;
    let dec_us = Histogram::new();
    let rec_us = Histogram::new();
    for _ in 0..reps {
        let mut d = data.clone();
        let t0 = Instant::now();
        r.decompose(&mut d);
        let dec = t0.elapsed();
        dec_us.record_duration(dec);
        best_dec = best_dec.min(dec.as_nanos());
        let t0 = Instant::now();
        r.recompose(&mut d);
        let rec = t0.elapsed();
        rec_us.record_duration(rec);
        best_rec = best_rec.min(rec.as_nanos());
    }
    // Per-kernel breakdown from exactly one decompose + recompose pair, so
    // the kernel sums are comparable to decompose_ns + recompose_ns. Taken
    // from the quietest of `reps` pairs (smallest total) — keeping one
    // coherent pass rather than per-kernel minima across passes, so the
    // breakdown still sums to a real end-to-end time.
    let mut kernels: Vec<(String, u128)> = Vec::new();
    let mut best_total = u128::MAX;
    for _ in 0..reps {
        let _ = r.take_times();
        let mut d = data.clone();
        r.decompose(&mut d);
        r.recompose(&mut d);
        let times = r.take_times();
        let total: u128 = times.rows().iter().map(|(_, dur, _)| dur.as_nanos()).sum();
        if total < best_total {
            best_total = total;
            kernels = times
                .rows()
                .iter()
                .map(|(label, dur, _)| (label.to_lowercase(), dur.as_nanos()))
                .collect();
        }
    }
    let tile = match plan.layout {
        Layout::Tiled { tile } => Some(tile),
        _ => None,
    };
    let row = Row {
        shape: shape_tag(shape),
        layout: plan.layout.as_str().to_string(),
        threading: plan.threading.to_string(),
        tile,
        decompose_ns: best_dec,
        recompose_ns: best_rec,
        decompose_us: dec_us.snapshot(),
        recompose_us: rec_us.snapshot(),
        kernels,
    };
    eprintln!(
        "{}: decompose {:.3} ms, recompose {:.3} ms",
        row.key(),
        best_dec as f64 / 1e6,
        best_rec as f64 / 1e6
    );
    row
}

// --- minimal JSON row re-parser for --compare -------------------------

fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let end = line[at..].find('"')?;
    Some(line[at..at + end].to_string())
}

fn json_num(line: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn parse_rows(json: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    for line in json.lines() {
        let Some(shape) = json_str(line, "shape") else {
            continue;
        };
        let mut kernels = Vec::new();
        if let Some(at) = line.find("\"kernels\": {") {
            let body = &line[at + "\"kernels\": {".len()..];
            if let Some(end) = body.find('}') {
                for pair in body[..end].split(',') {
                    let mut it = pair.split(':');
                    if let (Some(k), Some(v)) = (it.next(), it.next()) {
                        if let Ok(ns) = v.trim().parse() {
                            kernels.push((k.trim().trim_matches('"').to_string(), ns));
                        }
                    }
                }
            }
        }
        rows.push(Row {
            shape,
            layout: json_str(line, "layout").unwrap_or_default(),
            threading: json_str(line, "threading").unwrap_or_default(),
            tile: json_num(line, "tile").map(|t| t as usize),
            decompose_ns: json_num(line, "decompose_ns").unwrap_or(0),
            recompose_ns: json_num(line, "recompose_ns").unwrap_or(0),
            // The gate compares the best-of scalars; the histogram
            // spread is informational and not re-parsed.
            decompose_us: HistView::default(),
            recompose_us: HistView::default(),
            kernels,
        });
    }
    rows
}

/// Compare `current` against a baseline file; returns the regression
/// report lines (empty = pass). A cell regresses when it is both
/// `tolerance_pct` percent and 2 ms slower than baseline.
fn compare(current: &[Row], baseline_json: &str, tolerance_pct: f64) -> Vec<String> {
    const NOISE_FLOOR_NS: u128 = 2_000_000;
    let baseline = parse_rows(baseline_json);
    let mut report = Vec::new();
    let mut matched = 0usize;
    for row in current {
        let Some(base) = baseline.iter().find(|b| b.key() == row.key()) else {
            continue; // new cell, nothing to gate against
        };
        matched += 1;
        let mut checks: Vec<(String, u128, u128)> = vec![
            ("decompose".into(), base.decompose_ns, row.decompose_ns),
            ("recompose".into(), base.recompose_ns, row.recompose_ns),
        ];
        for (label, ns) in &row.kernels {
            if let Some((_, base_ns)) = base.kernels.iter().find(|(l, _)| l == label) {
                checks.push((format!("kernel {label}"), *base_ns, *ns));
            }
        }
        for (what, old, new) in checks {
            let limit = old + (old as f64 * tolerance_pct / 100.0) as u128;
            if new > limit && new - old > NOISE_FLOOR_NS {
                report.push(format!(
                    "REGRESSION {} {what}: {:.3} ms -> {:.3} ms (+{:.0}%, tolerance {:.0}%)",
                    row.key(),
                    old as f64 / 1e6,
                    new as f64 / 1e6,
                    (new as f64 / old as f64 - 1.0) * 100.0,
                    tolerance_pct
                ));
            }
        }
    }
    if matched == 0 {
        report.push("REGRESSION gate matched no baseline cells (format drift?)".into());
    }
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_refactor.json");
    let mut tile: Option<usize> = None;
    let mut tile_sweep: Vec<usize> = Vec::new();
    let mut baseline: Option<String> = None;
    let mut tolerance = 15.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--tile" => {
                tile = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--tile needs a size"),
                )
            }
            "--tile-sweep" => {
                tile_sweep = it
                    .next()
                    .expect("--tile-sweep needs a list like 8,32,128")
                    .split(',')
                    .map(|v| v.parse().expect("bad tile size"))
                    .collect()
            }
            "--compare" => baseline = Some(it.next().expect("--compare needs a path").clone()),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a percentage")
            }
            other => {
                eprintln!(
                    "usage: bench_refactor [--quick] [--out PATH] [--tile N] \
                     [--tile-sweep N,N,..] [--compare BASELINE.json] [--tolerance PCT] \
                     (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }

    let shapes: Vec<Shape> = if quick {
        // Two smoke shapes plus one realistic 129³-class volume — the
        // size where parallel kernels should overtake serial on a
        // multi-core host, so the committed baseline tracks the
        // crossover cell too.
        vec![
            Shape::d2(65, 65),
            Shape::d3(17, 17, 17),
            Shape::d3(129, 129, 129),
        ]
    } else {
        vec![
            Shape::d2(513, 513),
            Shape::d2(1025, 1025),
            Shape::d3(65, 65, 65),
            Shape::d3(129, 129, 129),
        ]
    };
    // Quick mode now carries a 129³-class cell, where single-shot numbers
    // are too noisy to gate on — best-of-2 keeps the sweep fast while
    // damping scheduler noise.
    let reps = if quick { 2 } else { 3 };

    let mut rows = Vec::new();
    for &shape in &shapes {
        let data = field(shape);
        for mut plan in ExecPlan::ALL {
            if let (Layout::Tiled { .. }, Some(t)) = (plan.layout, tile) {
                plan = plan.with_layout(Layout::Tiled { tile: t });
            }
            rows.push(bench_cell(shape, &data, plan, reps));
        }
        for &t in &tile_sweep {
            let plan = ExecPlan::new(Threading::Parallel, Layout::Tiled { tile: t });
            rows.push(bench_cell(shape, &data, plan, reps));
        }
    }

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    // Worker-pool counters across the whole sweep: `spawned_threads`
    // must stay at one warmup pool (≤ pool size - 1) no matter how many
    // cells ran — the flat-spawn guarantee the shim's persistent pool
    // makes. `dispatches` counts parallel batch hand-offs, sized by
    // `host_threads` / `MGARD_THREADS`.
    let pool = format!(
        "{{\"size\": {}, \"spawned_threads\": {}, \"dispatches\": {}}}",
        rayon::pool_size(),
        rayon::thread_spawn_count(),
        rayon::pool_dispatch_count()
    );
    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"refactor\",\n  \"quick\": {quick},\n  \
         \"host_threads\": {threads},\n  \"pool\": {pool},\n  \"reps\": {reps},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("wrote {} ({} result rows, pool {pool})", out, rows.len());

    if let Some(path) = baseline {
        let base = std::fs::read_to_string(&path).expect("read baseline json");
        let report = compare(&rows, &base, tolerance);
        if report.is_empty() {
            println!("compare: no regressions vs {path} (tolerance {tolerance}%)");
        } else {
            for line in &report {
                eprintln!("{line}");
            }
            std::process::exit(1);
        }
    }
}
