//! `bench_refactor` — machine-readable refactoring benchmark.
//!
//! Sweeps the execution-plan matrix (threading × layout) over a set of
//! grid shapes, timing one decompose + recompose per cell and collecting
//! the per-kernel wall-clock breakdown (the paper's Table IV categories),
//! then writes the results as JSON so the perf trajectory can be tracked
//! across commits (`BENCH_*.json`).
//!
//! ```text
//! bench_refactor [--quick] [--out PATH]
//! ```
//!
//! `--quick` restricts the sweep to small shapes and a single repetition
//! (the CI smoke configuration); the default output path is
//! `BENCH_refactor.json` in the current directory.

use mg_core::{ExecPlan, Refactorer};
use mg_grid::{NdArray, Shape};
use std::fmt::Write as _;
use std::time::Instant;

fn field(shape: Shape) -> NdArray<f64> {
    NdArray::from_fn(shape, |i| {
        i.iter()
            .enumerate()
            .map(|(d, &v)| ((v * (d + 7)) % 31) as f64 * 0.06)
            .sum()
    })
}

fn shape_tag(shape: Shape) -> String {
    shape
        .as_slice()
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join("x")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_refactor.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            other => {
                eprintln!("usage: bench_refactor [--quick] [--out PATH] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    let shapes: Vec<Shape> = if quick {
        vec![Shape::d2(65, 65), Shape::d3(17, 17, 17)]
    } else {
        vec![
            Shape::d2(513, 513),
            Shape::d2(1025, 1025),
            Shape::d3(65, 65, 65),
            Shape::d3(129, 129, 129),
        ]
    };
    let reps = if quick { 1 } else { 3 };

    let mut rows = Vec::new();
    for &shape in &shapes {
        let data = field(shape);
        for plan in ExecPlan::ALL {
            let mut r = Refactorer::<f64>::new(shape).unwrap().plan(plan);
            // Warm-up pass allocates the working buffers.
            let mut warm = data.clone();
            r.decompose(&mut warm);
            r.recompose(&mut warm);
            let _ = r.take_times();

            let mut best_dec = u128::MAX;
            let mut best_rec = u128::MAX;
            for _ in 0..reps {
                let mut d = data.clone();
                let t0 = Instant::now();
                r.decompose(&mut d);
                best_dec = best_dec.min(t0.elapsed().as_nanos());
                let t0 = Instant::now();
                r.recompose(&mut d);
                best_rec = best_rec.min(t0.elapsed().as_nanos());
            }
            // Per-kernel breakdown from exactly one decompose + recompose
            // pair, so the kernel sums are comparable to
            // decompose_ns + recompose_ns regardless of `reps`.
            let _ = r.take_times();
            let mut d = data.clone();
            r.decompose(&mut d);
            r.recompose(&mut d);
            let times = r.take_times();
            let mut kernels = String::new();
            for (i, (label, dur, _)) in times.rows().iter().enumerate() {
                if i > 0 {
                    kernels.push_str(", ");
                }
                write!(kernels, "\"{}\": {}", label.to_lowercase(), dur.as_nanos()).unwrap();
            }
            rows.push(format!(
                "    {{\"shape\": \"{}\", \"layout\": \"{}\", \"threading\": \"{}\", \
                 \"decompose_ns\": {}, \"recompose_ns\": {}, \"kernels\": {{{}}}}}",
                shape_tag(shape),
                plan.layout,
                plan.threading,
                best_dec,
                best_rec,
                kernels
            ));
            eprintln!(
                "{} {}/{}: decompose {:.3} ms, recompose {:.3} ms",
                shape_tag(shape),
                plan.layout,
                plan.threading,
                best_dec as f64 / 1e6,
                best_rec as f64 / 1e6
            );
        }
    }

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"bench\": \"refactor\",\n  \"quick\": {quick},\n  \
         \"host_threads\": {threads},\n  \"reps\": {reps},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("wrote {} ({} result rows)", out, rows.len());
}
