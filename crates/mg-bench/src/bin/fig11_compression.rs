//! Figure 11: MGARD lossy-compression time breakdown with the data
//! refactoring (+quantization) on the CPU vs off-loaded to the GPU.
//!
//! The CPU bars are *measured* on this host (serial kernels); the GPU
//! bars combine the simulated device time for refactoring+quantization
//! with the measured entropy stage (which stays on the CPU in the paper
//! too) plus modeled PCIe transfers.

use gpu_sim::device::DeviceSpec;
use mg_compress::Compressor;
use mg_gpu::kernels::Variant;
use mg_gpu::sim::{sim_decompose, sim_recompose};
use mg_grid::{Hierarchy, Shape};
use mg_workloads::gray_scott::{GrayScott, GrayScottParams};

const PCIE_BPS: f64 = 12.0e9;

fn bar(label: &str, refactor: f64, quant: f64, entropy: f64, xfer: f64) {
    let total = refactor + quant + entropy + xfer;
    println!(
        "{:<28} {:>8.1}ms  (refactor {:>6.1}ms | quantize {:>6.1}ms | entropy {:>6.1}ms | transfer {:>5.1}ms)",
        label,
        total * 1e3,
        refactor * 1e3,
        quant * 1e3,
        entropy * 1e3,
        xfer * 1e3
    );
}

fn main() {
    let n = 129usize;
    let shape = Shape::d3(n, n, n);
    let hier = Hierarchy::new(shape).unwrap();
    let bytes = (shape.len() * 8) as f64;
    let tau = 1e-3;

    println!("== Fig. 11: MGARD compression breakdown, Gray–Scott {n}^3, tau = {tau} ==\n");

    let mut gs = GrayScott::new(96, GrayScottParams::default());
    gs.step(400);
    let field = gs.u_field_dyadic(n);

    // CPU pipeline: measured serial stages.
    let mut c = Compressor::<f64>::new(shape, tau);
    let blob = c.compress(&field);
    let t = blob.timings;
    println!("-- compression --");
    bar(
        "CPU (measured, serial)",
        t.refactor.as_secs_f64(),
        t.quantize.as_secs_f64(),
        t.entropy.as_secs_f64(),
        0.0,
    );

    // GPU pipeline: simulated refactor+quantize on a V100, measured
    // entropy, modeled transfer of the quantized payload to the host.
    let dev = DeviceSpec::v100();
    let sim_refactor = sim_decompose(&hier, 8, &dev, Variant::Framework).total();
    let sim_quant = 2.0 * bytes / dev.sustained_bw(); // one streaming pass
    let xfer = blob.bytes.len() as f64 / PCIE_BPS + bytes / PCIE_BPS;
    bar(
        "GPU-offloaded (modeled)",
        sim_refactor,
        sim_quant,
        t.entropy.as_secs_f64(),
        xfer,
    );

    // Decompression.
    let (_, dt) = c.decompress(&blob);
    println!("\n-- decompression --");
    bar(
        "CPU (measured, serial)",
        dt.refactor.as_secs_f64(),
        dt.quantize.as_secs_f64(),
        dt.entropy.as_secs_f64(),
        0.0,
    );
    let sim_recomp = sim_recompose(&hier, 8, &dev, Variant::Framework).total();
    bar(
        "GPU-offloaded (modeled)",
        sim_recomp,
        sim_quant,
        dt.entropy.as_secs_f64(),
        xfer,
    );

    println!(
        "\ncompression ratio {:.1}x at tau={tau}; paper shape check: off-loading the",
        blob.ratio()
    );
    println!("refactoring (the dominant CPU stage) shrinks the pipeline until the CPU-side");
    println!("entropy stage is what remains — exactly Fig. 11's before/after bars.");
}
