//! Table V: end-to-end speedup of one GPU over one CPU core for
//! decomposition and recomposition across input sizes, plus the GPU
//! design's extra memory footprint.
//!
//! `--no-packing` ablates the node-packing optimization (the GPU runs the
//! naive unpacked kernels), showing how much of the speedup packing buys.

use gpu_sim::cpu::CpuSpec;
use gpu_sim::device::DeviceSpec;
use mg_bench::table::fmt_x;
use mg_gpu::kernels::Variant;
use mg_gpu::sim::{
    cpu_decompose, cpu_recompose, extra_footprint_fraction, sim_decompose, sim_recompose,
};
use mg_grid::{Hierarchy, Shape};

fn main() {
    let variant = if std::env::args().any(|a| a == "--no-packing") {
        println!("(ablation: node packing disabled — naive unpacked GPU kernels)\n");
        Variant::Naive
    } else {
        Variant::Framework
    };

    let desktop = (DeviceSpec::rtx2080ti(), CpuSpec::i7_9700k());
    let summit = (DeviceSpec::v100(), CpuSpec::power9());

    println!("== Table V: one GPU vs one CPU core ==");
    println!(
        "{:<6} {:>10} | {:>9} {:>9} | {:>9} {:>9} | {:>12}",
        "dims", "input", "desk dec", "desk rec", "smt dec", "smt rec", "extra mem"
    );

    let sizes_2d: Vec<usize> = (5..=13).map(|e| (1usize << e) + 1).collect();
    let sizes_3d: Vec<usize> = (5..=9).map(|e| (1usize << e) + 1).collect();

    let mut rows: Vec<(String, Vec<usize>)> = Vec::new();
    for n in sizes_2d {
        rows.push((format!("{n}^2"), vec![n, n]));
    }
    for n in sizes_3d {
        rows.push((format!("{n}^3"), vec![n, n, n]));
    }

    for (label, dims) in rows {
        let shape = Shape::new(&dims);
        let hier = Hierarchy::new(shape).unwrap();
        let mut cells = Vec::new();
        for (dev, cpu) in [&desktop, &summit] {
            let dec = cpu_decompose(&hier, 8, cpu).total()
                / sim_decompose(&hier, 8, dev, variant).total();
            let rec = cpu_recompose(&hier, 8, cpu).total()
                / sim_recompose(&hier, 8, dev, variant).total();
            cells.push(dec);
            cells.push(rec);
        }
        let fp = extra_footprint_fraction(shape);
        println!(
            "{:<6} {:>10} | {:>9} {:>9} | {:>9} {:>9} | {:>11.4}%",
            label,
            dims.len(),
            fmt_x(cells[0]),
            fmt_x(cells[1]),
            fmt_x(cells[2]),
            fmt_x(cells[3]),
            100.0 * fp
        );
    }

    println!();
    println!("paper anchors (Summit decomposition): 33^2 0.30x, 513^2 19.5x, 2049^2 108.8x,");
    println!("8193^2 311.2x; 33^3 1.14x, 513^3 103.4x; footprints 6.06% (33^2) .. 0.02% (8193^2).");
    println!("shape checks: GPU loses on tiny grids, wins by orders of magnitude on large ones;");
    println!("recomposition speedups slightly exceed decomposition; footprint shrinks as 1/n.");
}
