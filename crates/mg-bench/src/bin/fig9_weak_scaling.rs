//! Figure 9: weak-scaling throughput on the simulated Summit, up to 4096
//! GPUs (4 per node, ~1 GB per GPU), for 2-D and 3-D data, decomposition
//! and recomposition.

use gpu_sim::device::DeviceSpec;
use mg_cluster::WeakScaling;

fn main() {
    let dev = DeviceSpec::v100();
    let counts: Vec<usize> = (0..=12).map(|e| 1usize << e).collect();

    for (name, dims) in [
        ("2D (8193^2 per GPU, 0.54 GB)", vec![8193usize, 8193]),
        ("3D (513^3 per GPU, 1.08 GB)", vec![513usize, 513, 513]),
    ] {
        let ws = WeakScaling {
            rank_dims: dims,
            ..WeakScaling::default()
        };
        println!("== Fig. 9: {name} ==");
        println!(
            "{:>6} {:>14} {:>12} {:>14} {:>12}",
            "GPUs", "dec TB/s", "dec eff", "rec TB/s", "rec eff"
        );
        for &g in &counts {
            let d = ws.run(&dev, g, false);
            let r = ws.run(&dev, g, true);
            println!(
                "{:>6} {:>14.3} {:>11.1}% {:>14.3} {:>11.1}%",
                g,
                d.throughput / 1e12,
                100.0 * d.efficiency,
                r.throughput / 1e12,
                100.0 * r.efficiency
            );
        }
        println!();
    }
    println!("paper anchors at 4096 GPUs: 45.42 TB/s (2D dec), 40.45 TB/s (2D rec),");
    println!("17.78 TB/s (3D dec), 19.86 TB/s (3D rec); near-linear weak scaling.");
}
