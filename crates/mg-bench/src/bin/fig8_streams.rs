//! Figure 8: CUDA-stream speedup for 3-D 513^3 data on both devices,
//! 1..64 streams, decomposition and recomposition.

use gpu_sim::device::DeviceSpec;
use mg_gpu::streams3d::stream_speedup_curve;
use mg_grid::{Hierarchy, Shape};

fn main() {
    let hier = Hierarchy::new(Shape::d3(513, 513, 513)).unwrap();
    let counts = [1usize, 2, 4, 8, 16, 32, 64];

    for dev in [DeviceSpec::rtx2080ti(), DeviceSpec::v100()] {
        println!("== Fig. 8: {} (3D 513^3) ==", dev.name);
        println!(
            "{:>8} {:>14} {:>14}",
            "streams", "decomp spdup", "recomp spdup"
        );
        let dec = stream_speedup_curve(&hier, 8, &dev, &counts, false);
        let rec = stream_speedup_curve(&hier, 8, &dev, &counts, true);
        for ((s, d), (_, r)) in dec.iter().zip(rec.iter()) {
            println!("{:>8} {:>13.2}x {:>13.2}x", s, d, r);
        }
        println!();
    }
    println!("paper anchors (V100): up to 2.6x decomposition / 3.2x recomposition at 8 streams,");
    println!("with no further gain beyond ~8 streams.");
}
