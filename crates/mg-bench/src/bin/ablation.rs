//! Ablation harness for the design choices DESIGN.md calls out:
//!
//! 1. node packing (framework) vs unpacked (naive) per kernel;
//! 2. divergence-free warp re-assignment vs naive thread mapping in the
//!    grid-processing kernel;
//! 3. fiber-batched in-place linear pipeline vs vector-wise;
//! 4. stream-count sweep (see also fig8_streams);
//! 5. slice-plane batching choice for 3-D linear kernels.

use gpu_sim::device::DeviceSpec;
use gpu_sim::timing::kernel_time;
use mg_gpu::kernels::{coeff_profile, mass_profile, solve_profile, transfer_profile, Variant};
use mg_gpu::sim::{sim_decompose, slice_plane_ratio};
use mg_grid::{Axis, Hierarchy, Shape};

fn main() {
    let dev = DeviceSpec::v100();

    println!(
        "== Ablation 1+3: packing & the linear framework, per kernel (4097^2, level stride 16) =="
    );
    let shape = Shape::d2(257, 257); // level-8 subgrid of a 4097^2 input
    let step = 16u64;
    println!(
        "{:<22} {:>14} {:>14} {:>8}",
        "kernel", "framework", "naive", "ratio"
    );
    for (name, fw, nv) in [
        (
            "mass multiply",
            kernel_time(
                &dev,
                &mass_profile(shape, Axis(0), 1, 8, Variant::Framework),
            ),
            kernel_time(&dev, &mass_profile(shape, Axis(0), step, 8, Variant::Naive)),
        ),
        (
            "transfer multiply",
            kernel_time(
                &dev,
                &transfer_profile(shape, Axis(0), 1, 8, Variant::Framework),
            ),
            kernel_time(
                &dev,
                &transfer_profile(shape, Axis(0), step, 8, Variant::Naive),
            ),
        ),
        (
            "correction solve",
            kernel_time(
                &dev,
                &solve_profile(shape, Axis(0), 1, 8, Variant::Framework),
            ),
            kernel_time(
                &dev,
                &solve_profile(shape, Axis(0), step, 8, Variant::Naive),
            ),
        ),
    ] {
        println!(
            "{:<22} {:>12.1}us {:>12.1}us {:>7.2}x",
            name,
            fw * 1e6,
            nv * 1e6,
            nv / fw
        );
    }

    println!("\n== Ablation 2: warp re-assignment (divergence) in the coefficient kernel ==");
    for dims in [vec![513usize, 513], vec![65, 65, 65]] {
        let s = Shape::new(&dims);
        let fw = coeff_profile(s, 1, 8, Variant::Framework);
        let nv = coeff_profile(s, 1, 8, Variant::Naive);
        println!(
            "{dims:?}: divergence {:.0} -> {:.0} paths/warp; time {:.1}us -> {:.1}us",
            nv.divergence,
            fw.divergence,
            kernel_time(&dev, &nv) * 1e6,
            kernel_time(&dev, &fw) * 1e6
        );
    }

    println!("\n== Ablation: end-to-end framework vs naive ==");
    for dims in [vec![1025usize, 1025], vec![4097, 4097], vec![257, 257, 257]] {
        let hier = Hierarchy::new(Shape::new(&dims)).unwrap();
        let fw = sim_decompose(&hier, 8, &dev, Variant::Framework).total();
        let nv = sim_decompose(&hier, 8, &dev, Variant::Naive).total();
        println!("{dims:?}: {:.2}x from the full optimization set", nv / fw);
    }

    println!("\n== Ablation: shared-memory tile padding (bank conflicts) ==");
    for (elem, name) in [(4u32, "f32"), (8u32, "f64")] {
        let unpadded = mg_gpu::kernels::smem_column_conflict_factor(32, elem);
        let padded = mg_gpu::kernels::smem_column_conflict_factor(33, elem);
        println!(
            "{name}: 32-wide tile replays {unpadded}x per column access; padded 2^b+1 tile {padded}x"
        );
    }

    println!("\n== Ablation 5: slice-plane choice for 3-D linear kernels ==");
    let ratio = slice_plane_ratio(&Hierarchy::new(Shape::d3(513, 513, 513)).unwrap(), 8, &dev);
    println!("x-y/x-z plane batching vs slicing along the processed axis: {ratio:.2}x cheaper");
}
