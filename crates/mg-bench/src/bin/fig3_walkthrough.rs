//! Figure 3: the conceptual 5x5 decomposition/recomposition walkthrough,
//! printed numerically — every intermediate state of the two-level
//! process, and the proof that recomposition undoes it.

use mg_core::Refactorer;
use mg_grid::{NdArray, Shape};

fn print_grid(title: &str, a: &NdArray<f64>) {
    println!("{title}:");
    for r in 0..5 {
        let row: Vec<String> = (0..5).map(|c| format!("{:>8.3}", a.get(&[r, c]))).collect();
        println!("  {}", row.join(" "));
    }
    println!();
}

fn main() {
    println!("== Fig. 3 walkthrough: 5x5 two-level decomposition ==\n");
    let shape = Shape::d2(5, 5);
    // A smooth-ish field sampled on the grid.
    let original = NdArray::from_fn(shape, |i| {
        let (x, y) = (i[0] as f64 / 4.0, i[1] as f64 / 4.0);
        (2.0 * x + 0.5).sin() + y * y
    });
    print_grid("original data (level 2 grid, 5x5)", &original);

    let mut r = Refactorer::<f64>::new(shape).unwrap();
    let mut data = original.clone();

    r.decompose_level(&mut data, 2);
    print_grid(
        "after level-2 step (coefficients at N2\\N1, corrected 3x3 at even nodes)",
        &data,
    );

    r.decompose_level(&mut data, 1);
    print_grid(
        "after level-1 step (fully refactored: N0 at corners, C1, C2 elsewhere)",
        &data,
    );

    println!("recomposition (right-to-left along the bottom of Fig. 3):\n");
    r.recompose_level(&mut data, 1);
    print_grid("after undoing level 1", &data);
    r.recompose_level(&mut data, 2);
    print_grid("after undoing level 2 (restored)", &data);

    let err = mg_grid::real::max_abs_diff(data.as_slice(), original.as_slice());
    println!("max |restored - original| = {err:.2e}");
}
