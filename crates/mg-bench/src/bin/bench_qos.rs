//! `bench_qos` — goodput under overload for three admission policies,
//! same workload, same cluster, only the gateway's QoS config differing:
//!
//! * `shed`      — FIFO with a tiny wait queue: over-cap requests are
//!   answered `Overloaded` immediately (the classic binary shed);
//! * `unbounded` — a deep, patient queue and no degradation: nothing is
//!   turned away, everything waits at full fidelity;
//! * `degrade`   — fidelity-aware admission: under queue pressure the
//!   gateway serves a coarser class prefix (never past each client's
//!   own `--floor`), shedding only as a backstop.
//!
//! Clients run closed-loop against a deliberately serialized gateway
//! (`max_concurrent = 1`) for a fixed duration. A response produces
//! *usable* bytes when it arrives within the client's latency deadline —
//! fidelity within the floor is guaranteed by the server, which never
//! degrades past `floor_tau`. Goodput is usable bytes over wall time.
//! On a healthy build `degrade` strictly dominates both alternatives on
//! goodput and keeps p99 bounded: full-fidelity payloads cannot meet the
//! deadline once a queue forms, so `unbounded` misses on latency and
//! `shed` wastes its slot on responses that arrive too late, while
//! coarse prefixes are cheap enough to drain the whole queue in time.
//!
//! ```text
//! bench_qos [--quick] [--out PATH] [--clients N] [--seconds S]
//!           [--deadline-mult X]
//! ```

use mg_gateway::{Gateway, GatewayConfig};
use mg_grid::{NdArray, Shape};
use mg_obs::Histogram;
use mg_serve::client::{Connection, FetchRequest};
use mg_serve::protocol::Priority;
use mg_serve::qos::{DegradePolicy, QosConfig};
use mg_serve::{Catalog, Server, ServerConfig};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn field(shape: Shape) -> NdArray<f64> {
    NdArray::from_fn(shape, |i| {
        i.iter()
            .enumerate()
            .map(|(d, &v)| ((v as f64) * 0.0137 * (d + 1) as f64).sin())
            .product::<f64>()
    })
}

/// One client's profile: who they are and how coarse an answer they can
/// still use (their fidelity floor).
struct ClientProfile {
    tenant: String,
    priority: Priority,
    floor_tau: f64,
}

fn profiles(clients: usize) -> Vec<ClientProfile> {
    (0..clients)
        .map(|i| match i % 3 {
            // Interactive dashboards: high priority, coarse previews OK.
            0 => ClientProfile {
                tenant: format!("dash-{}", i / 3),
                priority: Priority::High,
                floor_tau: 1e-1,
            },
            // Analysis notebooks: normal priority, mid fidelity floor.
            1 => ClientProfile {
                tenant: format!("notebook-{}", i / 3),
                priority: Priority::Normal,
                floor_tau: 1e-2,
            },
            // Bulk archival readers: low priority, any fidelity usable.
            _ => ClientProfile {
                tenant: format!("bulk-{}", i / 3),
                priority: Priority::Low,
                floor_tau: f64::INFINITY,
            },
        })
        .collect()
}

struct Scenario {
    name: &'static str,
    qos: QosConfig,
}

fn scenarios() -> Vec<Scenario> {
    let degrade_off = DegradePolicy {
        max_degrade: [0; 3],
        ..DegradePolicy::default()
    };
    vec![
        Scenario {
            name: "shed",
            qos: QosConfig {
                max_concurrent: 1,
                queue_cap: 1,
                queue_timeout: Duration::from_secs(30),
                degrade: degrade_off,
                ..QosConfig::default()
            },
        },
        Scenario {
            name: "unbounded",
            qos: QosConfig {
                max_concurrent: 1,
                queue_cap: 1 << 20,
                queue_timeout: Duration::from_secs(300),
                degrade: degrade_off,
                ..QosConfig::default()
            },
        },
        Scenario {
            name: "degrade",
            qos: QosConfig {
                max_concurrent: 1,
                queue_cap: 1 << 20,
                queue_timeout: Duration::from_secs(300),
                // Aggressive: coarsen one level from the first request on
                // (degrade_start 0) so a draining queue never re-admits
                // full-fidelity stragglers that would stall everyone
                // behind them, and deepen with the queue.
                degrade: DegradePolicy {
                    degrade_start: [0, 0, 0],
                    depth_per_level: 1,
                    max_degrade: [8, 6, 4],
                    ..DegradePolicy::default()
                },
                ..QosConfig::default()
            },
        },
    ]
}

#[derive(Default)]
struct Tally {
    usable_bytes: u64,
    total_bytes: u64,
    responses: u64,
    degraded: u64,
    shed: u64,
    deadline_misses: u64,
}

/// Closed-loop clients against `addr` for `seconds`, each looping its
/// profile's request on a keep-alive connection (the protocol keeps the
/// connection usable after an `Overloaded` answer). A shed gets a short
/// polite backoff; everything else retries immediately (closed loop).
fn run_scenario(
    addr: SocketAddr,
    profiles: &[ClientProfile],
    seconds: f64,
    deadline: Duration,
    latency_us: &Histogram,
) -> (Tally, f64) {
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let tally = std::thread::scope(|s| {
        let handles: Vec<_> = profiles
            .iter()
            .map(|p| {
                let stop = &stop;
                s.spawn(move || {
                    let mut t = Tally::default();
                    let mut req = FetchRequest::new("field")
                        .tau(0.0)
                        .tenant(p.tenant.clone())
                        .priority(p.priority);
                    if p.floor_tau.is_finite() {
                        req = req.floor_tau(p.floor_tau);
                    }
                    let mut conn = Connection::open(addr).expect("open client connection");
                    while !stop.load(Ordering::Relaxed) {
                        let start = Instant::now();
                        match conn.fetch(&req) {
                            Ok(got) => {
                                let lat = start.elapsed();
                                latency_us.record_duration(lat);
                                t.responses += 1;
                                t.total_bytes += got.raw.len() as u64;
                                if got.degraded() {
                                    t.degraded += 1;
                                }
                                if lat <= deadline {
                                    t.usable_bytes += got.raw.len() as u64;
                                } else {
                                    t.deadline_misses += 1;
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                t.shed += 1;
                                std::thread::sleep(Duration::from_micros(500));
                            }
                            Err(e) => panic!("fetch failed: {e}"),
                        }
                    }
                    t
                })
            })
            .collect();
        // The timer thread is this scope's main thread.
        while t0.elapsed().as_secs_f64() < seconds {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        let mut all = Tally::default();
        for h in handles {
            let t = h.join().expect("client thread");
            all.usable_bytes += t.usable_bytes;
            all.total_bytes += t.total_bytes;
            all.responses += t.responses;
            all.degraded += t.degraded;
            all.shed += t.shed;
            all.deadline_misses += t.deadline_misses;
        }
        all
    });
    (tally, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_qos.json");
    let mut clients = 9usize;
    let mut seconds = 3.0f64;
    let mut deadline_mult = 1.5f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--clients" => {
                clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a count")
            }
            "--seconds" => {
                seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a duration")
            }
            "--deadline-mult" => {
                deadline_mult = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--deadline-mult needs a factor")
            }
            other => {
                eprintln!(
                    "usage: bench_qos [--quick] [--out PATH] [--clients N] [--seconds S] \
                     [--deadline-mult X] (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    if quick {
        clients = clients.min(6);
        seconds = seconds.min(1.0);
    }
    // A big payload makes full-fidelity service genuinely expensive, so
    // the latency SLO separates the policies.
    let shape = if quick {
        Shape::d2(513, 513)
    } else {
        Shape::d2(1025, 1025)
    };

    let catalog = Catalog::new();
    catalog
        .insert_array("field", &field(shape))
        .expect("dyadic");
    let backend = Server::bind(
        "127.0.0.1:0",
        catalog,
        ServerConfig {
            workers: clients + 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind backend");

    let gateway_config = |qos: QosConfig| GatewayConfig {
        workers: clients + 2,
        replication: 1,
        // The gateway cache would answer every repeat fetch and no queue
        // would ever form; overload needs real per-request service.
        cache_bytes: 0,
        probe_interval: Duration::from_millis(500),
        qos,
        ..GatewayConfig::default()
    };

    // Calibrate the deadline: the unloaded full-fidelity latency through
    // a gateway, warm. The SLO is "as fast as unloaded" × the multiplier
    // — once a full-payload queue forms, full fidelity cannot meet it.
    let calib = Gateway::bind(
        "127.0.0.1:0",
        vec![backend.local_addr().to_string()],
        gateway_config(QosConfig::default()),
    )
    .expect("bind calibration gateway");
    let mut unloaded = Vec::new();
    let mut calib_conn = Connection::open(calib.local_addr()).expect("open calibration conn");
    let calib_req = FetchRequest::new("field").tau(0.0);
    for i in 0..12 {
        let t = Instant::now();
        calib_conn.fetch(&calib_req).expect("calibration fetch");
        if i >= 2 {
            unloaded.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    drop(calib_conn);
    calib.shutdown().expect("shutdown calibration gateway");
    unloaded.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let unloaded_ms = unloaded[unloaded.len() / 2];
    let deadline = Duration::from_secs_f64(unloaded_ms * deadline_mult / 1e3);

    let profs = profiles(clients);
    let mut rows = Vec::new();
    let mut goodputs = Vec::new();
    for scenario in scenarios() {
        let gw = Gateway::bind(
            "127.0.0.1:0",
            vec![backend.local_addr().to_string()],
            gateway_config(scenario.qos),
        )
        .expect("bind scenario gateway");
        let latency_us = Histogram::new();
        let (tally, wall_ms) =
            run_scenario(gw.local_addr(), &profs, seconds, deadline, &latency_us);
        gw.shutdown().expect("shutdown scenario gateway");
        let lat = latency_us.snapshot();
        let goodput = tally.usable_bytes as f64 / (wall_ms / 1e3);
        let p50 = lat.quantile(0.50).unwrap_or(0) as f64 / 1e3;
        let p99 = lat.quantile(0.99).unwrap_or(0) as f64 / 1e3;
        eprintln!(
            "{:>9}: goodput {:>8.2} MB/s ({} responses, {} degraded, {} shed, \
             {} late; p50 {:.2} ms, p99 {:.2} ms)",
            scenario.name,
            goodput / 1e6,
            tally.responses,
            tally.degraded,
            tally.shed,
            tally.deadline_misses,
            p50,
            p99,
        );
        goodputs.push((scenario.name, goodput));
        rows.push(format!(
            "    {{\"scenario\": \"{}\", \"goodput_bytes_per_s\": {:.1}, \
             \"usable_bytes\": {}, \"total_bytes\": {}, \"responses\": {}, \
             \"degraded\": {}, \"shed\": {}, \"deadline_misses\": {}, \
             \"wall_ms\": {:.1}, \"latency_us\": {}}}",
            scenario.name,
            goodput,
            tally.usable_bytes,
            tally.total_bytes,
            tally.responses,
            tally.degraded,
            tally.shed,
            tally.deadline_misses,
            wall_ms,
            lat.to_json(),
        ));
    }
    backend.shutdown().expect("shutdown backend");

    let by_name = |n: &str| goodputs.iter().find(|(s, _)| *s == n).unwrap().1;
    let degrade = by_name("degrade");
    let over_shed = degrade / by_name("shed").max(1.0);
    let over_unbounded = degrade / by_name("unbounded").max(1.0);
    eprintln!(
        "degrade goodput: {over_shed:.2}x over shed, {over_unbounded:.2}x over unbounded \
         (deadline {:.2} ms = {deadline_mult} x unloaded {unloaded_ms:.2} ms)",
        deadline.as_secs_f64() * 1e3
    );

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"bench\": \"qos\",\n  \"quick\": {quick},\n  \"host_threads\": {threads},\n  \
         \"clients\": {clients},\n  \"seconds\": {seconds},\n  \
         \"deadline_ms\": {:.4},\n  \"unloaded_ms\": {unloaded_ms:.4},\n  \
         \"deadline_mult\": {deadline_mult},\n  \"results\": [\n{}\n  ],\n  \
         \"dominance\": {{\"degrade_over_shed\": {over_shed:.4}, \
         \"degrade_over_unbounded\": {over_unbounded:.4}}}\n}}\n",
        deadline.as_secs_f64() * 1e3,
        rows.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("wrote {out}");
}
