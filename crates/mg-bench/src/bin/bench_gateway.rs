//! `bench_gateway` — latency/throughput of the gateway tier against
//! direct backend access, and of keep-alive (protocol v2) connections
//! against one-shot (v1) fetches.
//!
//! Three topologies over the same dataset mix:
//!
//! * `direct`   — clients hit one mg-serve backend, no gateway;
//! * `gateway1` — one gateway fronting that backend (what the proxy hop
//!   plus the gateway response cache costs/buys);
//! * `gateway3` — one gateway fronting three backends with the catalog
//!   sharded by the gateway's own consistent-hash ring (replication 2).
//!
//! Each topology runs twice: `oneshot` opens a fresh connection per
//! request; `keepalive` rides one v2 connection per client thread. On a
//! healthy build keep-alive beats one-shot on repeat fetches in every
//! topology (no connect/teardown per request), and `gateway1` cached
//! fetches land close to `direct` despite the extra hop.
//!
//! A final `degraded` scenario puts one of three backends behind an
//! `mg_faults` proxy with a flaky-NIC profile: connections stall on
//! accept for ~120 ms at random and die mid-stream every ~32 KiB. The
//! common case stays fast, so the router's observed p95 — and with it
//! the hedge delay — stays low, and the rare stalled exchange is
//! re-issued to a healthy replica milliseconds in instead of burning
//! the full stall. The same load runs with hedging off and on; on a
//! healthy build `hedge_p99_speedup` > 1.
//!
//! ```text
//! bench_gateway [--quick] [--out PATH] [--clients N] [--requests N]
//! ```

use mg_gateway::{Gateway, GatewayConfig, Ring};
use mg_grid::{NdArray, Shape};
use mg_obs::{HistView, Histogram};
use mg_serve::{client, Catalog, Server, ServerConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Mixed error bounds, cycled per request (0.0 = full payload).
const TAUS: [f64; 4] = [1e-1, 1e-3, 1e-5, 0.0];

fn field(shape: Shape, seed: usize) -> NdArray<f64> {
    NdArray::from_fn(shape, |i| {
        i.iter()
            .enumerate()
            .map(|(d, &v)| ((v as f64 + seed as f64) * 0.031 * (d + 1) as f64).sin())
            .product::<f64>()
    })
}

struct Phase {
    topology: &'static str,
    transport: &'static str,
    wall_ms: f64,
    reqs_per_s: f64,
    latency_us: HistView,
    payload_bytes: u64,
}

impl Phase {
    fn mean_ms(&self) -> f64 {
        self.latency_us.mean() / 1e3
    }

    /// A quantile of the latency histogram, in milliseconds.
    fn q_ms(&self, q: f64) -> f64 {
        self.latency_us.quantile(q).unwrap_or(0) as f64 / 1e3
    }
}

/// Fire `clients × requests` fetches of `datasets` at `addr`; latencies
/// land in one shared sharded histogram.
fn run_phase(
    addr: SocketAddr,
    datasets: &[String],
    clients: usize,
    requests: usize,
    keep_alive: bool,
    latency_us: &Histogram,
) -> u64 {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut conn = keep_alive.then(|| client::Connection::open(addr).unwrap());
                    let mut bytes = 0u64;
                    for i in 0..requests {
                        let dataset = &datasets[(c + i) % datasets.len()];
                        let tau = TAUS[(c + i) % TAUS.len()];
                        let t = Instant::now();
                        let got = match &mut conn {
                            Some(conn) => {
                                conn.fetch(&client::FetchRequest::new(dataset).tau(tau))
                                    .expect("fetch")
                                    .result
                            }
                            None => {
                                client::FetchRequest::new(dataset)
                                    .tau(tau)
                                    .send(addr)
                                    .expect("fetch")
                                    .result
                            }
                        };
                        latency_us.record_duration(t.elapsed());
                        bytes += got.raw.len() as u64;
                    }
                    bytes
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    })
}

fn measure(
    topology: &'static str,
    transport: &'static str,
    addr: SocketAddr,
    datasets: &[String],
    clients: usize,
    requests: usize,
) -> Phase {
    // One warmup pass fills caches and spins up workers (its latencies
    // go to a throwaway histogram).
    run_phase(
        addr,
        datasets,
        clients,
        requests.min(4),
        transport == "keepalive",
        &Histogram::new(),
    );
    let latency_us = Histogram::new();
    let t0 = Instant::now();
    let payload_bytes = run_phase(
        addr,
        datasets,
        clients,
        requests,
        transport == "keepalive",
        &latency_us,
    );
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let n = clients * requests;
    Phase {
        topology,
        transport,
        wall_ms,
        reqs_per_s: n as f64 / (wall_ms / 1e3),
        latency_us: latency_us.snapshot(),
        payload_bytes,
    }
}

fn gateway_config(clients: usize) -> GatewayConfig {
    GatewayConfig {
        workers: clients.max(8),
        probe_interval: Duration::from_millis(500),
        ..GatewayConfig::default()
    }
}

fn backend_config(clients: usize) -> ServerConfig {
    ServerConfig {
        // Headroom for the gateway's parked pool connections plus the
        // concurrently forwarded requests.
        workers: clients + 4,
        ..ServerConfig::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_gateway.json");
    let mut clients = 6usize;
    let mut requests = 48usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--clients" => {
                clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a count")
            }
            "--requests" => {
                requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a count")
            }
            other => {
                eprintln!(
                    "usage: bench_gateway [--quick] [--out PATH] [--clients N] [--requests N] \
                     (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    if quick {
        clients = clients.min(4);
        requests = requests.min(24);
    }
    let shape = if quick {
        Shape::d2(65, 65)
    } else {
        Shape::d2(129, 129)
    };

    let datasets: Vec<String> = (0..6).map(|i| format!("ds-{i}")).collect();
    let fields: Vec<NdArray<f64>> = (0..datasets.len()).map(|i| field(shape, i)).collect();
    let mut phases: Vec<Phase> = Vec::new();

    // --- direct + gateway1: one backend holding everything -------------
    {
        let catalog = Catalog::new();
        for (name, data) in datasets.iter().zip(&fields) {
            catalog.insert_array(name, data).expect("dyadic shape");
        }
        let backend =
            Server::bind("127.0.0.1:0", catalog, backend_config(clients)).expect("bind backend");
        let backend_addr = backend.local_addr();
        for transport in ["oneshot", "keepalive"] {
            phases.push(measure(
                "direct",
                transport,
                backend_addr,
                &datasets,
                clients,
                requests,
            ));
        }
        let gw = Gateway::bind(
            "127.0.0.1:0",
            vec![backend_addr.to_string()],
            GatewayConfig {
                replication: 1,
                ..gateway_config(clients)
            },
        )
        .expect("bind gateway1");
        for transport in ["oneshot", "keepalive"] {
            phases.push(measure(
                "gateway1",
                transport,
                gw.local_addr(),
                &datasets,
                clients,
                requests,
            ));
        }
        gw.shutdown().expect("shutdown gateway1");
        backend.shutdown().expect("shutdown backend");
    }

    // --- gateway3: three backends, catalog sharded by the ring ---------
    {
        let mut servers = Vec::new();
        let mut catalogs = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..3 {
            let cat = Catalog::new();
            let server = Server::bind("127.0.0.1:0", cat.clone(), backend_config(clients))
                .expect("bind shard");
            addrs.push(server.local_addr().to_string());
            servers.push(server);
            catalogs.push(cat);
        }
        let config = gateway_config(clients);
        let ring = Ring::new(addrs.clone(), config.vnodes);
        for (name, data) in datasets.iter().zip(&fields) {
            for replica in ring.replicas(name, config.replication) {
                let slot = addrs.iter().position(|a| a == replica).unwrap();
                catalogs[slot].insert_array(name, data).expect("dyadic");
            }
        }
        let gw = Gateway::bind("127.0.0.1:0", addrs, config).expect("bind gateway3");
        for transport in ["oneshot", "keepalive"] {
            phases.push(measure(
                "gateway3",
                transport,
                gw.local_addr(),
                &datasets,
                clients,
                requests,
            ));
        }
        let stats = gw.shutdown().expect("shutdown gateway3");
        eprintln!(
            "gateway3 internals: {} cache hits / {} misses, pool {} dials / {} reuses",
            stats.cache_hits, stats.cache_misses, stats.backend_dials, stats.backend_reuses
        );
        for server in servers {
            server.shutdown().expect("shutdown shard");
        }
    }

    // --- degraded: one of three backends behind a trickling proxy ------
    let mut degraded: Vec<Phase> = Vec::new();
    {
        let mut servers = Vec::new();
        let mut catalogs = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..3 {
            let cat = Catalog::new();
            let server = Server::bind("127.0.0.1:0", cat.clone(), backend_config(clients))
                .expect("bind shard");
            addrs.push(server.local_addr().to_string());
            servers.push(server);
            catalogs.push(cat);
        }
        // The proxy's address is backend 0's identity on the ring. Cuts
        // keep killing pooled connections so the gateway must re-dial,
        // and ~a third of those dials stall well past the fast path's
        // latency — rare, severe, and exactly the tail hedging targets.
        let proxy = mg_faults::FaultProxy::spawn(
            &addrs[0],
            mg_faults::Injector::new(
                7,
                mg_faults::FaultSpec {
                    stall_per_mille: 150,
                    stall: Duration::from_millis(120),
                    cut_per_mille: 1000,
                    cut_window: 32 * 1024,
                    ..mg_faults::FaultSpec::default()
                },
            ),
        )
        .expect("spawn fault proxy");
        addrs[0] = proxy.local_addr().to_string();

        let base = gateway_config(clients);
        let ring = Ring::new(addrs.clone(), base.vnodes);
        // The ring hashes ephemeral addresses, so dataset placement
        // would vary run to run. Pick names until exactly two of six
        // have the degraded backend as their primary — every run then
        // sends the same share of traffic through the slow path.
        let mut deg_datasets: Vec<String> = Vec::new();
        let (mut slow_primary, mut fast_primary) = (0, 0);
        for i in 0.. {
            let name = format!("deg-{i}");
            if ring.primary(&name) == Some(addrs[0].as_str()) {
                if slow_primary == 2 {
                    continue;
                }
                slow_primary += 1;
            } else {
                if fast_primary == 4 {
                    continue;
                }
                fast_primary += 1;
            }
            deg_datasets.push(name);
            if slow_primary == 2 && fast_primary == 4 {
                break;
            }
        }
        for (name, data) in deg_datasets.iter().zip(&fields) {
            for replica in ring.replicas(name, base.replication) {
                let slot = addrs.iter().position(|a| a == replica).unwrap();
                catalogs[slot].insert_array(name, data).expect("dyadic");
            }
        }
        for (mode, hedge) in [
            ("unhedged", None),
            ("hedged", Some(Duration::from_millis(2))),
        ] {
            let gw = Gateway::bind(
                "127.0.0.1:0",
                addrs.clone(),
                GatewayConfig {
                    hedge,
                    cache_bytes: 0, // every fetch crosses the slow path
                    // Keep the circuit breaker out of this comparison:
                    // a tripped breaker would bench the breaker, not
                    // hedging, by parking all traffic on the replicas.
                    breaker_threshold: 1 << 20,
                    ..gateway_config(clients)
                },
            )
            .expect("bind degraded gateway");
            degraded.push(measure(
                "degraded",
                mode,
                gw.local_addr(),
                &deg_datasets,
                clients,
                requests,
            ));
            let stats = gw.shutdown().expect("shutdown degraded gateway");
            if mode == "hedged" {
                eprintln!(
                    "degraded internals: {} hedges, {} hedge wins",
                    stats.hedges, stats.hedge_wins
                );
            }
        }
        proxy.shutdown();
        for server in servers {
            server.shutdown().expect("shutdown shard");
        }
    }
    let hedge_p99_speedup = degraded[0].q_ms(0.99) / degraded[1].q_ms(0.99);
    eprintln!(
        "degraded: unhedged p99 {:.3} ms, hedged p99 {:.3} ms -> {hedge_p99_speedup:.2}x",
        degraded[0].q_ms(0.99),
        degraded[1].q_ms(0.99)
    );

    for w in phases.chunks(2) {
        let speedup = w[0].mean_ms() / w[1].mean_ms();
        eprintln!(
            "{:>8}: oneshot {:.3} ms/req, keepalive {:.3} ms/req -> {speedup:.2}x",
            w[0].topology,
            w[0].mean_ms(),
            w[1].mean_ms()
        );
    }

    let row = |p: &Phase| {
        format!(
            "    {{\"topology\": \"{}\", \"transport\": \"{}\", \"clients\": {clients}, \
             \"requests_per_client\": {requests}, \"wall_ms\": {:.3}, \
             \"reqs_per_s\": {:.1}, \"payload_bytes\": {}, \"latency_us\": {}}}",
            p.topology,
            p.transport,
            p.wall_ms,
            p.reqs_per_s,
            p.payload_bytes,
            p.latency_us.to_json()
        )
    };
    let rows: Vec<String> = phases.iter().map(row).collect();
    // The degraded rows quote their tail quantiles (p99/p99.9) straight
    // from the latency histogram — the numbers hedging exists to fix.
    let degraded_rows: Vec<String> = degraded
        .iter()
        .map(|p| {
            format!(
                "    {{\"scenario\": \"degraded\", \"mode\": \"{}\", \"p50_ms\": {:.4}, \
                 \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"p999_ms\": {:.4}, \
                 \"latency_us\": {}}}",
                p.transport,
                p.q_ms(0.50),
                p.q_ms(0.95),
                p.q_ms(0.99),
                p.q_ms(0.999),
                p.latency_us.to_json()
            )
        })
        .collect();
    let keepalive_speedup: Vec<String> = phases
        .chunks(2)
        .map(|w| {
            format!(
                "    {{\"topology\": \"{}\", \"oneshot_over_keepalive\": {:.4}}}",
                w[0].topology,
                w[0].mean_ms() / w[1].mean_ms()
            )
        })
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"bench\": \"gateway\",\n  \"quick\": {quick},\n  \"host_threads\": {threads},\n  \
         \"datasets\": {},\n  \"taus\": [0.1, 0.001, 0.00001, 0.0],\n  \"results\": [\n{}\n  ],\n  \
         \"keepalive_speedup\": [\n{}\n  ],\n  \"degraded\": [\n{}\n  ],\n  \
         \"hedge_p99_speedup\": {hedge_p99_speedup:.4}\n}}\n",
        datasets.len(),
        rows.join(",\n"),
        keepalive_speedup.join(",\n"),
        degraded_rows.join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("wrote {out}");
}
