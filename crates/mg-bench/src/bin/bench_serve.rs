//! `bench_serve` — throughput/latency benchmark of the progressive-
//! retrieval server under concurrent clients at mixed error bounds.
//!
//! Spins up two in-process servers over the same catalog: one with the
//! encoded-prefix cache disabled (every fetch re-encodes — the *cold*
//! path) and one with a pre-warmed cache (every fetch is a lookup — the
//! *cached* path), then fires `--clients` threads × `--requests` fetches
//! each, cycling through a fixed τ ladder. Emits `BENCH_serve.json` with
//! wall time, request rate, a full `mg_obs` latency histogram
//! (`latency_us`: count/sum/min/max/p50/p90/p99/p999 + buckets), cache
//! hit rate, and error rate per phase, plus a top-level `slo` block
//! (every objective's final status and the worst burn rate the run
//! hit); on a healthy build the cached rows beat the cold rows because
//! repeat requests at a τ skip the prefix encoding entirely, and every
//! error rate stays zero.
//!
//! `--obs-gate` additionally measures the metrics hot path itself
//! (counter increments + sharded histogram records, the per-request work
//! the server's instrumentation does) and **exits nonzero** if that work
//! costs 2% or more of a cached request — the CI guard that keeps the
//! observability layer off the serving fast path.
//!
//! ```text
//! bench_serve [--quick] [--out PATH] [--clients N] [--requests N] [--obs-gate]
//! ```

use mg_grid::{NdArray, Shape};
use mg_obs::{Counter, HistView, Histogram, SloReport};
use mg_serve::{client, Catalog, ObsConfig, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Mixed error bounds, cycled per request (0.0 = full payload).
const TAUS: [f64; 5] = [1e-1, 1e-2, 1e-3, 1e-5, 0.0];

fn field(shape: Shape) -> NdArray<f64> {
    NdArray::from_fn(shape, |i| {
        i.iter()
            .enumerate()
            .map(|(d, &v)| ((v as f64) * 0.029 * (d + 1) as f64).sin())
            .product::<f64>()
    })
}

fn shape_tag(shape: Shape) -> String {
    shape
        .as_slice()
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join("x")
}

struct PhaseResult {
    wall_ms: f64,
    reqs_per_s: f64,
    latency_us: HistView,
    hit_rate: f64,
    payload_bytes: u64,
    /// Failed fetches out of `attempted` — a healthy in-process bench
    /// run never errors, and CI gates the cached phase on exactly that.
    errors: u64,
    attempted: u64,
}

impl PhaseResult {
    fn mean_ms(&self) -> f64 {
        self.latency_us.mean() / 1e3
    }

    fn error_rate(&self) -> f64 {
        self.errors as f64 / self.attempted.max(1) as f64
    }
}

/// One pass over the τ ladder: spins up worker threads / populates the
/// cache (when enabled) so the measured phase sees a warm server.
fn warmup(addr: SocketAddr, dataset: &str) {
    for &tau in &TAUS {
        let _ = client::FetchRequest::new(dataset)
            .tau(tau)
            .send(addr)
            .expect("warmup fetch");
    }
}

/// Fire `clients × requests` fetches at `addr`; latencies land in one
/// shared `mg_obs` histogram (sharded, so the client threads record
/// concurrently without serializing on a lock).
fn run_phase(addr: SocketAddr, dataset: &str, clients: usize, requests: usize) -> PhaseResult {
    let before = client::stats(addr).expect("stats");
    let latency_us = Histogram::new();
    let errors = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let latency_us = &latency_us;
            let errors = &errors;
            s.spawn(move || {
                for i in 0..requests {
                    let tau = TAUS[(c + i) % TAUS.len()];
                    let t = Instant::now();
                    // Errors are counted, not fatal: the row reports an
                    // error rate and only successes land in the
                    // latency histogram.
                    match client::FetchRequest::new(dataset).tau(tau).send(addr) {
                        Ok(_) => latency_us.record_duration(t.elapsed()),
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let n = clients * requests;
    // Counter deltas isolate this phase from the warmup pass.
    let after = client::stats(addr).expect("stats");
    let hits = after.cache_hits - before.cache_hits;
    let misses = after.cache_misses - before.cache_misses;
    PhaseResult {
        wall_ms,
        reqs_per_s: n as f64 / (wall_ms / 1e3),
        latency_us: latency_us.snapshot(),
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        payload_bytes: after.payload_bytes - before.payload_bytes,
        errors: errors.load(Ordering::Relaxed),
        attempted: n as u64,
    }
}

/// Cost of the per-request metrics work, measured directly: the server
/// records a handful of counter increments and histogram samples per
/// fetch; time `OPS_PER_REQUEST` of each and report the per-request
/// price in nanoseconds.
const OPS_PER_REQUEST: u32 = 8;

/// Fold one server's SLO evaluation into the run summary: track the
/// worst burn rate any objective reached and keep the latest report.
fn track_slo(report: SloReport, peak: &mut f64, last: &mut Option<SloReport>) {
    for e in &report.entries {
        *peak = peak.max(e.fast_burn).max(e.slow_burn);
    }
    *last = Some(report);
}

fn obs_hot_path_cost() -> Duration {
    let counter = Counter::new();
    let hist = Histogram::new();
    let reps: u32 = 200_000;
    let t0 = Instant::now();
    for i in 0..reps {
        counter.inc();
        hist.record(u64::from(i) % 50_000);
    }
    let per_pair = t0.elapsed() / reps;
    // A counter bump plus a histogram record, OPS_PER_REQUEST of each.
    per_pair * OPS_PER_REQUEST
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_serve.json");
    let mut clients = 8usize;
    let mut requests = 16usize;
    let mut obs_gate = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--clients" => {
                clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a count")
            }
            "--requests" => {
                requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a count")
            }
            "--obs-gate" => obs_gate = true,
            other => {
                eprintln!(
                    "usage: bench_serve [--quick] [--out PATH] [--clients N] [--requests N] \
                     [--obs-gate] (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    if quick {
        clients = clients.min(4);
        requests = requests.min(8);
    }

    let shapes: Vec<Shape> = if quick {
        vec![Shape::d2(129, 129)]
    } else {
        vec![Shape::d2(513, 513), Shape::d3(65, 65, 65)]
    };

    let mut rows = Vec::new();
    let mut cached_mean = f64::NAN;
    // SLO summary across the run: the worst burn rate any objective hit
    // on any phase server, plus the last server's final report.
    let mut peak_burn = 0.0f64;
    let mut slo_final: Option<SloReport> = None;
    for &shape in &shapes {
        let tag = shape_tag(shape);
        let data = field(shape);
        let catalog = Catalog::new();
        catalog.insert_array(&tag, &data).expect("dyadic shape");

        let pool = ServerConfig {
            workers: clients.min(8),
            // A bench phase lasts well under the default 1 s cadence;
            // tighten it so the monitor has windows to evaluate SLOs
            // over by the time the phase ends.
            obs: ObsConfig {
                cadence: Duration::from_millis(50),
                ..ObsConfig::default()
            },
            ..ServerConfig::default()
        };

        // Cold: caching disabled, every fetch re-encodes its prefix.
        // (The warmup pass only spins up the worker threads.)
        let cold_server = Server::bind(
            "127.0.0.1:0",
            catalog.clone(),
            ServerConfig {
                cache_bytes: 0,
                ..pool
            },
        )
        .expect("bind cold server");
        warmup(cold_server.local_addr(), &tag);
        let cold = run_phase(cold_server.local_addr(), &tag, clients, requests);
        track_slo(
            cold_server.monitor().slo_report(),
            &mut peak_burn,
            &mut slo_final,
        );
        cold_server.shutdown().expect("shutdown cold server");

        // Cached: default cache, pre-warmed with one pass over the τ
        // ladder so the measured phase is all hits.
        let warm_server =
            Server::bind("127.0.0.1:0", catalog.clone(), pool).expect("bind warm server");
        warmup(warm_server.local_addr(), &tag);
        let cached = run_phase(warm_server.local_addr(), &tag, clients, requests);
        track_slo(
            warm_server.monitor().slo_report(),
            &mut peak_burn,
            &mut slo_final,
        );
        warm_server.shutdown().expect("shutdown warm server");

        let speedup = cold.mean_ms() / cached.mean_ms();
        eprintln!(
            "{tag}: cold {:.3} ms/req ({:.0} req/s), cached {:.3} ms/req \
             ({:.0} req/s) -> {speedup:.2}x, hit rate {:.0}%",
            cold.mean_ms(),
            cold.reqs_per_s,
            cached.mean_ms(),
            cached.reqs_per_s,
            cached.hit_rate * 100.0
        );
        cached_mean = cached.latency_us.mean() * 1e3; // ns per cached request
        for (phase, r) in [("cold", &cold), ("cached", &cached)] {
            rows.push(format!(
                "    {{\"dataset\": \"{tag}\", \"phase\": \"{phase}\", \"clients\": {clients}, \
                 \"requests_per_client\": {requests}, \"wall_ms\": {:.3}, \
                 \"reqs_per_s\": {:.1}, \"hit_rate\": {:.4}, \"error_rate\": {:.4}, \
                 \"payload_bytes\": {}, \"latency_us\": {}}}",
                r.wall_ms,
                r.reqs_per_s,
                r.hit_rate,
                r.error_rate(),
                r.payload_bytes,
                r.latency_us.to_json()
            ));
        }
    }

    // The observability gate: the per-request metrics work, priced
    // directly, must stay under 2% of a cached request.
    let obs_cost = obs_hot_path_cost();
    let obs_pct = obs_cost.as_nanos() as f64 / cached_mean * 100.0;
    eprintln!(
        "obs hot path: {:?} per request ({OPS_PER_REQUEST} counter+histogram pairs) \
         = {obs_pct:.3}% of a cached request",
        obs_cost
    );

    // The SLO summary block: every objective's final evaluation on the
    // last phase server, the worst status among them, and the worst
    // burn rate any objective hit anywhere in the run.
    let slo = slo_final.expect("at least one phase ran");
    let objectives = slo
        .entries
        .iter()
        .map(|e| {
            format!(
                "{{\"name\": \"{}\", \"status\": \"{}\", \"fast_burn\": {:.4}, \
                 \"slow_burn\": {:.4}}}",
                e.name,
                e.status.as_str(),
                e.fast_burn,
                e.slow_burn
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let slo_block = format!(
        "{{\"status\": \"{}\", \"peak_burn\": {peak_burn:.4}, \"objectives\": [{objectives}]}}",
        slo.worst().as_str()
    );
    eprintln!("slo: {} (peak burn {peak_burn:.2})", slo.worst().as_str());

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"quick\": {quick},\n  \"host_threads\": {threads},\n  \
         \"taus\": [0.1, 0.01, 0.001, 0.00001, 0.0],\n  \
         \"obs_hot_path_ns\": {},\n  \"obs_hot_path_pct\": {obs_pct:.4},\n  \
         \"slo\": {slo_block},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        obs_cost.as_nanos(),
        rows.join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("wrote {out}");

    // NaN (a degenerate cached mean) must fail the gate, not pass it.
    let under_gate = obs_pct.partial_cmp(&2.0) == Some(std::cmp::Ordering::Less);
    if obs_gate && !under_gate {
        eprintln!("OBS GATE FAILED: metrics hot path {obs_pct:.3}% >= 2% of a cached request");
        std::process::exit(1);
    }
}
