//! `bench_serve` — throughput/latency benchmark of the progressive-
//! retrieval server under concurrent clients at mixed error bounds.
//!
//! Spins up two in-process servers over the same catalog: one with the
//! encoded-prefix cache disabled (every fetch re-encodes — the *cold*
//! path) and one with a pre-warmed cache (every fetch is a lookup — the
//! *cached* path), then fires `--clients` threads × `--requests` fetches
//! each, cycling through a fixed τ ladder. Emits `BENCH_serve.json` with
//! wall time, request rate, mean/p50/p95 latency, and cache hit rate per
//! phase; on a healthy build the cached rows beat the cold rows because
//! repeat requests at a τ skip the prefix encoding entirely.
//!
//! ```text
//! bench_serve [--quick] [--out PATH] [--clients N] [--requests N]
//! ```

use mg_grid::{NdArray, Shape};
use mg_serve::{client, Catalog, Server, ServerConfig};
use std::net::SocketAddr;
use std::time::Instant;

/// Mixed error bounds, cycled per request (0.0 = full payload).
const TAUS: [f64; 5] = [1e-1, 1e-2, 1e-3, 1e-5, 0.0];

fn field(shape: Shape) -> NdArray<f64> {
    NdArray::from_fn(shape, |i| {
        i.iter()
            .enumerate()
            .map(|(d, &v)| ((v as f64) * 0.029 * (d + 1) as f64).sin())
            .product::<f64>()
    })
}

fn shape_tag(shape: Shape) -> String {
    shape
        .as_slice()
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join("x")
}

struct PhaseResult {
    wall_ms: f64,
    reqs_per_s: f64,
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    hit_rate: f64,
    payload_bytes: u64,
}

/// One pass over the τ ladder: spins up worker threads / populates the
/// cache (when enabled) so the measured phase sees a warm server.
fn warmup(addr: SocketAddr, dataset: &str) {
    for &tau in &TAUS {
        let _ = client::FetchRequest::new(dataset)
            .tau(tau)
            .send(addr)
            .expect("warmup fetch");
    }
}

/// Fire `clients × requests` fetches at `addr` and collect latencies.
fn run_phase(
    addr: SocketAddr,
    dataset: &str,
    clients: usize,
    requests: usize,
) -> (PhaseResult, Vec<f64>) {
    let before = client::stats(addr).expect("stats");
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(requests);
                    for i in 0..requests {
                        let tau = TAUS[(c + i) % TAUS.len()];
                        let t = Instant::now();
                        let got = client::FetchRequest::new(dataset)
                            .tau(tau)
                            .send(addr)
                            .expect("fetch");
                        lats.push((t.elapsed().as_secs_f64() * 1e3, got.raw.len() as u64));
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .map(|(ms, _)| ms)
            .collect()
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = latencies.len();
    // Counter deltas isolate this phase from the warmup pass.
    let after = client::stats(addr).expect("stats");
    let hits = after.cache_hits - before.cache_hits;
    let misses = after.cache_misses - before.cache_misses;
    let result = PhaseResult {
        wall_ms,
        reqs_per_s: n as f64 / (wall_ms / 1e3),
        mean_ms: latencies.iter().sum::<f64>() / n as f64,
        p50_ms: latencies[n / 2],
        p95_ms: latencies[(n * 95 / 100).min(n - 1)],
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        payload_bytes: after.payload_bytes - before.payload_bytes,
    };
    (result, latencies)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_serve.json");
    let mut clients = 8usize;
    let mut requests = 16usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--clients" => {
                clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a count")
            }
            "--requests" => {
                requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a count")
            }
            other => {
                eprintln!(
                    "usage: bench_serve [--quick] [--out PATH] [--clients N] [--requests N] \
                     (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    if quick {
        clients = clients.min(4);
        requests = requests.min(8);
    }

    let shapes: Vec<Shape> = if quick {
        vec![Shape::d2(129, 129)]
    } else {
        vec![Shape::d2(513, 513), Shape::d3(65, 65, 65)]
    };

    let mut rows = Vec::new();
    for &shape in &shapes {
        let tag = shape_tag(shape);
        let data = field(shape);
        let catalog = Catalog::new();
        catalog.insert_array(&tag, &data).expect("dyadic shape");

        let pool = ServerConfig {
            workers: clients.min(8),
            ..ServerConfig::default()
        };

        // Cold: caching disabled, every fetch re-encodes its prefix.
        // (The warmup pass only spins up the worker threads.)
        let cold_server = Server::bind(
            "127.0.0.1:0",
            catalog.clone(),
            ServerConfig {
                cache_bytes: 0,
                ..pool
            },
        )
        .expect("bind cold server");
        warmup(cold_server.local_addr(), &tag);
        let (cold, _) = run_phase(cold_server.local_addr(), &tag, clients, requests);
        cold_server.shutdown().expect("shutdown cold server");

        // Cached: default cache, pre-warmed with one pass over the τ
        // ladder so the measured phase is all hits.
        let warm_server =
            Server::bind("127.0.0.1:0", catalog.clone(), pool).expect("bind warm server");
        warmup(warm_server.local_addr(), &tag);
        let (cached, _) = run_phase(warm_server.local_addr(), &tag, clients, requests);
        warm_server.shutdown().expect("shutdown warm server");

        let speedup = cold.mean_ms / cached.mean_ms;
        eprintln!(
            "{tag}: cold {:.3} ms/req ({:.0} req/s), cached {:.3} ms/req \
             ({:.0} req/s) -> {speedup:.2}x, hit rate {:.0}%",
            cold.mean_ms,
            cold.reqs_per_s,
            cached.mean_ms,
            cached.reqs_per_s,
            cached.hit_rate * 100.0
        );
        for (phase, r) in [("cold", &cold), ("cached", &cached)] {
            rows.push(format!(
                "    {{\"dataset\": \"{tag}\", \"phase\": \"{phase}\", \"clients\": {clients}, \
                 \"requests_per_client\": {requests}, \"wall_ms\": {:.3}, \
                 \"reqs_per_s\": {:.1}, \"mean_ms\": {:.4}, \"p50_ms\": {:.4}, \
                 \"p95_ms\": {:.4}, \"hit_rate\": {:.4}, \"payload_bytes\": {}}}",
                r.wall_ms, r.reqs_per_s, r.mean_ms, r.p50_ms, r.p95_ms, r.hit_rate, r.payload_bytes
            ));
        }
    }

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"quick\": {quick},\n  \"host_threads\": {threads},\n  \
         \"taus\": [0.1, 0.01, 0.001, 0.00001, 0.0],\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("wrote {out}");
}
