//! `bench_stream` — end-to-end refactor+write overlap benchmark.
//!
//! Measures the same job two ways: decompose fully *then* write the
//! payload (serial), versus `mg_core::decompose_streaming` writing each
//! coefficient class from the I/O thread while the next level decomposes
//! (pipelined). `--throttle-mbps` (default 100, a realistic shared
//! parallel-FS lane per writer — the Fig. 1 regime the pipeline targets)
//! rate-limits the writer; set it to 0 to benchmark the raw device.
//!
//! Expect the pipeline to win when the *device* is the bottleneck (slow
//! tiers: sleeps overlap fully with compute) and to tie or lose when the
//! writer is CPU/cache-bound on a host with few cores — writing through
//! the page cache evicts the decomposition's working set, so overlap buys
//! nothing and LLC interference costs extra. See the README's measured
//! numbers for both regimes.
//!
//! ```text
//! bench_stream [--quick] [--out PATH] [--throttle-mbps N]
//! ```
//!
//! Emits `BENCH_stream.json` with serial/pipelined wall times and the
//! hidden-I/O fraction per shape.

use mg_core::{decompose_streaming, Refactorer};
use mg_grid::{NdArray, Shape};
use mg_io::StreamSink;
use mg_obs::Histogram;
use std::io::Write;
use std::time::{Duration, Instant};

fn field(shape: Shape) -> NdArray<f64> {
    NdArray::from_fn(shape, |i| {
        i.iter()
            .enumerate()
            .map(|(d, &v)| ((v * (d + 5)) % 29) as f64 * 0.07)
            .sum()
    })
}

/// Writer that models a `bps` bytes/second device: each write occupies the
/// device for `n / bps` seconds starting when the device is next free, and
/// the caller sleeps until its write completes (idle gaps earn no credit).
struct Throttled<W: Write> {
    inner: W,
    bps: f64,
    free_at: Option<Instant>,
    /// Wall time each `write` call held its caller, µs — the write-side
    /// stall distribution the pipeline exists to hide.
    write_us: Histogram,
}

impl<W: Write> Throttled<W> {
    fn new(inner: W, bps: f64, write_us: Histogram) -> Self {
        Throttled {
            inner,
            bps,
            free_at: None,
            write_us,
        }
    }
}

impl<W: Write> Write for Throttled<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let t0 = Instant::now();
        let n = self.inner.write(buf)?;
        if self.bps > 0.0 {
            let now = Instant::now();
            let start = self.free_at.map_or(now, |f| f.max(now));
            let free = start + Duration::from_secs_f64(n as f64 / self.bps);
            self.free_at = Some(free);
            if free > now {
                std::thread::sleep(free - now);
            }
        }
        self.write_us.record_duration(t0.elapsed());
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_stream.json");
    let mut throttle_mbps = 100.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--throttle-mbps" => {
                throttle_mbps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--throttle-mbps needs a number")
            }
            other => {
                eprintln!("usage: bench_stream [--quick] [--out PATH] [--throttle-mbps N] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let bps = throttle_mbps * 1e6;

    let shapes: Vec<Shape> = if quick {
        vec![Shape::d2(129, 129), Shape::d3(17, 17, 17)]
    } else {
        vec![Shape::d2(1025, 1025), Shape::d3(129, 129, 129)]
    };

    let dir = std::env::temp_dir().join(format!("bench-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let mut rows = Vec::new();
    for &shape in &shapes {
        let tag: String = shape
            .as_slice()
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("x");
        let data = field(shape);

        // Serial: decompose, then write everything through the same sink
        // stack (throttled file) using the streaming format for parity.
        let path_serial = dir.join(format!("{tag}-serial.mgst"));
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut d = data.clone();
        let serial_write_us = Histogram::new();
        let t0 = Instant::now();
        r.decompose(&mut d);
        let file = Throttled::new(
            std::io::BufWriter::new(std::fs::File::create(&path_serial).unwrap()),
            bps,
            serial_write_us.clone(),
        );
        let mut sink = StreamSink::new(file, r.hierarchy(), 8).unwrap();
        {
            use mg_core::ClassSink;
            let hier = r.hierarchy().clone();
            let mut buf = Vec::new();
            for k in (0..=hier.nlevels()).rev() {
                buf.clear();
                mg_grid::pack::for_each_class_offset(&hier, k, |off| buf.push(d.as_slice()[off]));
                ClassSink::<f64>::write_class(&mut sink, k, &buf).unwrap();
            }
        }
        sink.finish().unwrap().flush().unwrap();
        let serial = t0.elapsed();

        // Pipelined: the streaming driver overlaps level kernels with the
        // write-out of the previous level's class.
        let path_stream = dir.join(format!("{tag}-stream.mgst"));
        let mut r = Refactorer::<f64>::new(shape).unwrap();
        let mut d = data.clone();
        let stream_write_us = Histogram::new();
        let t0 = Instant::now();
        let file = Throttled::new(
            std::io::BufWriter::new(std::fs::File::create(&path_stream).unwrap()),
            bps,
            stream_write_us.clone(),
        );
        let mut sink = StreamSink::new(file, r.hierarchy(), 8).unwrap();
        let stats = decompose_streaming(&mut r, &mut d, &mut sink).unwrap();
        sink.finish().unwrap().flush().unwrap();
        let pipelined = t0.elapsed();

        let speedup = serial.as_secs_f64() / pipelined.as_secs_f64();
        eprintln!(
            "{tag}: serial {serial:?}, pipelined {pipelined:?} ({speedup:.2}x), \
             io {:?} ({:.0}% hidden)",
            stats.io,
            stats.hidden_fraction() * 100.0
        );
        rows.push(format!(
            "    {{\"shape\": \"{tag}\", \"serial_ns\": {}, \"pipelined_ns\": {}, \
             \"compute_ns\": {}, \"io_ns\": {}, \"hidden_fraction\": {:.4}, \
             \"serial_write_us\": {}, \"pipelined_write_us\": {}}}",
            serial.as_nanos(),
            pipelined.as_nanos(),
            stats.compute.as_nanos(),
            stats.io.as_nanos(),
            stats.hidden_fraction(),
            serial_write_us.snapshot().to_json(),
            stream_write_us.snapshot().to_json()
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let json = format!(
        "{{\n  \"bench\": \"stream\",\n  \"quick\": {quick},\n  \
         \"throttle_mbps\": {throttle_mbps},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, &json).expect("write BENCH json");
    println!("wrote {out}");
}
