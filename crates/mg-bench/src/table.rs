//! Minimal fixed-width table printer for harness output.

/// Print a row of fixed-width cells.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{:>w$}  ", c, w = w));
    }
    println!("{}", line.trim_end());
}

/// Format seconds in engineering style.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}us", s * 1e6)
    }
}

/// Format a speedup.
pub fn fmt_x(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else if x >= 10.0 {
        format!("{x:.1}x")
    } else {
        format!("{x:.2}x")
    }
}

/// Format bytes/s as GB/s.
pub fn fmt_gbps(bps: f64) -> String {
    format!("{:.2} GB/s", bps / 1e9)
}
