//! Wall-clock benchmarks of the entropy coder (the pipeline stage that
//! stays on the CPU in Fig. 11 — its throughput bounds the off-loaded
//! pipeline).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mg_compress::entropy::{decode, encode};
use std::hint::black_box;

fn quantized_like(n: usize) -> Vec<i64> {
    // Mimics quantized multigrid coefficients: mostly near zero with
    // occasional large values and long zero runs.
    (0..n)
        .map(|i| {
            let r = (i * 2654435761) % 1000;
            if r < 600 {
                0
            } else if r < 950 {
                (r as i64 % 37) - 18
            } else {
                (r as i64 - 975) * 1000
            }
        })
        .collect()
}

fn bench_entropy(c: &mut Criterion) {
    let vals = quantized_like(1 << 20);
    let bytes = (vals.len() * 8) as u64;
    let encoded = encode(&vals);

    let mut g = c.benchmark_group("entropy");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("encode_1M", |b| b.iter(|| encode(black_box(&vals))));
    g.bench_function("decode_1M", |b| {
        b.iter(|| decode(black_box(&encoded)).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_entropy
}
criterion_main!(benches);
