//! Wall-clock end-to-end decomposition/recomposition benchmarks across
//! the full execution-plan matrix (threading × layout) — the host-scale
//! analogue of Table V and the paper's Fig. 7 layout comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mg_core::{ExecPlan, Refactorer};
use mg_grid::{NdArray, Shape};
use std::hint::black_box;

fn plan_tag(plan: ExecPlan) -> String {
    format!("{}_{}", plan.threading.as_str(), plan.layout.as_str())
}

fn field(shape: Shape) -> NdArray<f64> {
    NdArray::from_fn(shape, |i| {
        i.iter()
            .enumerate()
            .map(|(d, &v)| ((v * (d + 7)) % 31) as f64 * 0.06)
            .sum()
    })
}

fn bench_decompose(c: &mut Criterion) {
    let mut g = c.benchmark_group("decompose");
    for (label, dims) in [
        ("513x513", vec![513usize, 513]),
        ("1025x1025", vec![1025, 1025]),
        ("65x65x65", vec![65, 65, 65]),
        ("129x129x129", vec![129, 129, 129]),
    ] {
        let shape = Shape::new(&dims);
        let data = field(shape);
        g.throughput(Throughput::Bytes((shape.len() * 8) as u64));
        for plan in ExecPlan::ALL {
            let mut r = Refactorer::<f64>::new(shape).unwrap().plan(plan);
            g.bench_with_input(BenchmarkId::new(plan_tag(plan), label), &dims, |b, _| {
                b.iter_batched(
                    || data.clone(),
                    |mut d| r.decompose(black_box(&mut d)),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

fn bench_recompose(c: &mut Criterion) {
    let mut g = c.benchmark_group("recompose");
    let shape = Shape::d2(1025, 1025);
    let mut refactored = field(shape);
    Refactorer::<f64>::new(shape)
        .unwrap()
        .decompose(&mut refactored);
    g.throughput(Throughput::Bytes((shape.len() * 8) as u64));
    for plan in ExecPlan::ALL {
        let mut r = Refactorer::<f64>::new(shape).unwrap().plan(plan);
        g.bench_function(BenchmarkId::new(plan_tag(plan), "1025x1025"), |b| {
            b.iter_batched(
                || refactored.clone(),
                |mut d| r.recompose(black_box(&mut d)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_decompose, bench_recompose
}
criterion_main!(benches);
