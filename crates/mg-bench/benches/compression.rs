//! Wall-clock benchmarks of the full MGARD-style compression pipeline
//! (the measured side of Fig. 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mg_compress::Compressor;
use mg_grid::{NdArray, Shape};
use std::hint::black_box;

fn field(shape: Shape) -> NdArray<f64> {
    NdArray::from_fn(shape, |i| {
        let x = i[0] as f64 * 0.05;
        let y = i[1] as f64 * 0.03;
        (x + y).sin() + 0.2 * (3.0 * x).cos()
    })
}

fn bench_compression(c: &mut Criterion) {
    let shape = Shape::d2(513, 513);
    let data = field(shape);
    let bytes = (shape.len() * 8) as u64;

    let mut g = c.benchmark_group("compression");
    g.throughput(Throughput::Bytes(bytes));
    for (tag, parallel) in [("serial", false), ("parallel", true)] {
        g.bench_with_input(BenchmarkId::new("compress", tag), &parallel, |b, &p| {
            let mut comp = Compressor::<f64>::new(shape, 1e-3);
            if p {
                comp = comp.parallel();
            }
            b.iter(|| comp.compress(black_box(&data)))
        });
    }
    let mut comp = Compressor::<f64>::new(shape, 1e-3);
    let blob = comp.compress(&data);
    g.bench_function("decompress", |b| {
        b.iter(|| comp.decompress(black_box(&blob)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compression
}
criterion_main!(benches);
