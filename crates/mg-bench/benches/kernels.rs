//! Wall-clock benchmarks of the five refactoring kernels, serial vs
//! rayon-parallel, on this host.
//!
//! These complement the simulated GPU numbers: the parallel variants use
//! the same fiber/plane batching as the paper's GPU frameworks, so the
//! serial-vs-parallel ratios measured here are the host-scale analogue of
//! Tables II/III.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mg_grid::{Axis, CoordSet, GridView, Hierarchy, Shape};
use mg_kernels::inplace::{mass_apply_inplace_segmented, mass_apply_inplace_segmented_parallel};
use mg_kernels::level::LevelCtx;
use mg_kernels::solve::ThomasFactors;
use mg_kernels::{coeff, mass, solve, transfer};
use std::hint::black_box;

fn make_ctx(shape: Shape) -> LevelCtx<f64> {
    let hier = Hierarchy::new(shape).unwrap();
    let coords = CoordSet::<f64>::stretched(shape, 0.2);
    let l = hier.nlevels();
    let cs = (0..shape.ndim())
        .map(|d| coords.level_coords(&hier, l, Axis(d)))
        .collect();
    LevelCtx::new(shape, cs)
}

fn field(shape: Shape) -> Vec<f64> {
    (0..shape.len())
        .map(|i| ((i * 2654435761) % 1000) as f64 * 0.002 - 1.0)
        .collect()
}

fn bench_coeff(c: &mut Criterion) {
    let mut g = c.benchmark_group("coefficients");
    for n in [513usize, 1025] {
        let shape = Shape::d2(n, n);
        let ctx = make_ctx(shape);
        let data = field(shape);
        g.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| coeff::compute_serial(black_box(&mut d), &ctx),
                criterion::BatchSize::LargeInput,
            )
        });
        let mut out = vec![0.0f64; data.len()];
        g.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| coeff::compute_parallel(black_box(&data), black_box(&mut out), &ctx))
        });
    }
    g.finish();
}

fn bench_mass(c: &mut Criterion) {
    let mut g = c.benchmark_group("mass_multiply");
    for n in [1025usize, 2049] {
        let shape = Shape::d2(n, n);
        let ctx = make_ctx(shape);
        let data = field(shape);
        let coords = ctx.coords(Axis(0)).to_vec();
        g.bench_with_input(BenchmarkId::new("serial_axis0", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| mass::mass_apply_serial(black_box(&mut d), shape, Axis(0), &coords),
                criterion::BatchSize::LargeInput,
            )
        });
        let mut out = vec![0.0f64; data.len()];
        g.bench_with_input(BenchmarkId::new("parallel_axis0", n), &n, |b, _| {
            b.iter(|| {
                mass::mass_apply_parallel(
                    black_box(&data),
                    black_box(&mut out),
                    shape,
                    Axis(0),
                    &coords,
                )
            })
        });
        // The paper's six-region segmented in-place variant.
        g.bench_with_input(
            BenchmarkId::new("inplace_segmented_axis0", n),
            &n,
            |b, _| {
                b.iter_batched(
                    || data.clone(),
                    |mut d| {
                        mass_apply_inplace_segmented(black_box(&mut d), shape, Axis(0), &coords, 64)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("inplace_segmented_parallel_axis0", n),
            &n,
            |b, _| {
                b.iter_batched(
                    || data.clone(),
                    |mut d| {
                        mass_apply_inplace_segmented_parallel(
                            black_box(&mut d),
                            shape,
                            Axis(0),
                            &coords,
                            64,
                        )
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

/// The Fig. 7 layout comparison on one kernel: the same mass multiply on
/// a level subgrid touched three ways — naive strided (embedded view),
/// pack → packed kernel → unpack, and the six-region segmented in-place
/// update.
fn bench_mass_layouts(c: &mut Criterion) {
    let mut g = c.benchmark_group("mass_layouts");
    let full = Shape::d2(1025, 1025);
    let hier = Hierarchy::new(full).unwrap();
    let data: Vec<f64> = field(full);
    for l in [hier.nlevels(), hier.nlevels() - 3] {
        let ld = hier.level_dims(l);
        let view = GridView::embedded(full, &ld);
        let n = ld.shape.dim(Axis(0));
        let coords: Vec<f64> = (0..n).map(|i| i as f64).collect();
        g.bench_with_input(BenchmarkId::new("strided", l), &l, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| mass::mass_apply_view_serial(black_box(&mut d), &view, Axis(0), &coords),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("packed", l), &l, |b, _| {
            let mut packed = Vec::new();
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    mg_grid::pack::pack_level(&d, full, &ld, &mut packed);
                    mass::mass_apply_serial(black_box(&mut packed), ld.shape, Axis(0), &coords);
                    mg_grid::pack::unpack_level(&mut d, full, &ld, &packed);
                },
                criterion::BatchSize::LargeInput,
            )
        });
        // The in-place backend's linear stage: the six-region segmented
        // update on the already-dense working buffer (no gather/scatter
        // bracket at all — staging is fused with the coefficient copy).
        let mut level_buf = Vec::new();
        mg_grid::pack::pack_level(&data, full, &ld, &mut level_buf);
        g.bench_with_input(BenchmarkId::new("inplace_segmented", l), &l, |b, _| {
            b.iter_batched(
                || level_buf.clone(),
                |mut d| {
                    mass_apply_inplace_segmented(black_box(&mut d), ld.shape, Axis(0), &coords, 64)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("transfer_multiply");
    let n = 2049usize;
    let shape = Shape::d2(n, n);
    let ctx = make_ctx(shape);
    let data = field(shape);
    let coords = ctx.coords(Axis(0)).to_vec();
    let m = n.div_ceil(2);
    let mut out = vec![0.0f64; m * n];
    g.bench_function("serial_axis0", |b| {
        b.iter(|| {
            transfer::transfer_apply_serial(
                black_box(&data),
                shape,
                black_box(&mut out),
                Axis(0),
                &coords,
            )
        })
    });
    g.bench_function("parallel_axis0", |b| {
        b.iter(|| {
            transfer::transfer_apply_parallel(
                black_box(&data),
                shape,
                black_box(&mut out),
                Axis(0),
                &coords,
            )
        })
    });
    g.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("correction_solve");
    let n = 2049usize;
    let shape = Shape::d2(n, n);
    let coords: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let factors = ThomasFactors::new(&coords);
    let data = field(shape);
    g.bench_function("serial_axis0", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| solve::solve_serial(black_box(&mut d), shape, Axis(0), &factors),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("parallel_axis0", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| solve::solve_parallel(black_box(&mut d), shape, Axis(0), &factors),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_coeff, bench_mass, bench_mass_layouts, bench_transfer, bench_solve
}
criterion_main!(benches);
