//! Grid-processing kernels: compute coefficients / restore from coefficients.
//!
//! At every node that has an odd index along at least one decimating
//! dimension, the *coefficient* is the difference between the nodal value
//! and the multilinear interpolant from the surrounding next-coarser-grid
//! nodes (all-even corners). Restoration adds the interpolant back.
//!
//! The interpolation sources are always all-even (coarse) nodes, which the
//! kernel never writes — so the serial variant updates strictly in place
//! with zero extra footprint, matching the paper's grid-processing
//! framework. The parallel variant reads a source array and writes a
//! destination array so that rayon can hand out disjoint row chunks; the
//! driver supplies its working buffer for this, keeping the footprint
//! within the algorithm's existing scratch space.

use crate::level::LevelCtx;
use mg_grid::{Axis, GridView, Real, Shape, MAX_DIMS};
use rayon::prelude::*;

/// Direction of the grid-processing update.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Mode {
    /// `u <- u - interp` (decomposition).
    Subtract,
    /// `u <- u + interp` (recomposition).
    Add,
}

/// Per-axis interpolation info precomputed once per kernel launch.
pub(crate) struct AxisInterp<T> {
    pub(crate) wl: Vec<T>,
    pub(crate) wr: Vec<T>,
    pub(crate) stride: usize,
    pub(crate) decimates: bool,
}

fn axis_interp<T: Real>(ctx: &LevelCtx<T>) -> Vec<AxisInterp<T>> {
    (0..ctx.ndim())
        .map(|d| {
            let (wl, wr) = ctx.interp_weights(Axis(d));
            AxisInterp {
                wl,
                wr,
                stride: ctx.shape().stride(Axis(d)),
                decimates: ctx.decimates(Axis(d)),
            }
        })
        .collect()
}

/// Multilinear interpolant at the node `idx` (odd along `odd_dims`),
/// reading the all-even corner nodes of `data`.
///
/// Iterates over the `2^k` corners; `k <= MAX_DIMS` so the loop is tiny.
#[inline]
fn interp_at<T: Real>(
    data: &[T],
    base: usize,
    idx: &[usize],
    axes: &[AxisInterp<T>],
    odd_dims: &[usize],
) -> T {
    let k = odd_dims.len();
    debug_assert!(k >= 1);
    let mut acc = T::ZERO;
    for mask in 0u32..(1u32 << k) {
        let mut w = T::ONE;
        // Start from the node offset and move each odd dim to a neighbour.
        let mut off = base as isize;
        for (b, &d) in odd_dims.iter().enumerate() {
            let ax = &axes[d];
            if mask & (1 << b) != 0 {
                w *= ax.wr[idx[d]];
                off += ax.stride as isize;
            } else {
                w *= ax.wl[idx[d]];
                off -= ax.stride as isize;
            }
        }
        acc += w * data[off as usize];
    }
    acc
}

fn run_serial<T: Real>(data: &mut [T], ctx: &LevelCtx<T>, mode: Mode) {
    let shape = ctx.shape();
    assert_eq!(data.len(), shape.len());
    let axes = axis_interp(ctx);
    let nd = shape.ndim();
    let row_len = shape.dim(Axis(nd - 1));
    let rows = shape.len() / row_len;
    // The update is mathematically in place (writes touch odd nodes, reads
    // touch all-even corner nodes — disjoint sets), but safe Rust cannot
    // alias `&[T]` with `&mut [T]`, so each row is staged through a
    // row-sized scratch and committed afterwards. The interpolation sources
    // live on even *rows*, which a row being staged never shadows.
    let mut scratch = vec![T::ZERO; row_len];
    for r in 0..rows {
        let base = r * row_len;
        scratch.copy_from_slice(&data[base..base + row_len]);
        run_rows_into_row(data, &mut scratch, shape, &axes, mode, r);
        data[base..base + row_len].copy_from_slice(&scratch);
    }
}

/// Upper bound on prefix (non-last-dim) corner-table entries: at most
/// `MAX_DIMS - 1` prefix dimensions can be odd.
const MAX_PREFIX_CORNERS: usize = 1 << (MAX_DIMS - 1);

/// Like `run_rows` but writes one row into a row-local buffer.
///
/// The corner weights and offsets contributed by the *prefix* dimensions
/// (all but the last) are fixed for the whole row, so they are hoisted
/// into per-row tables (`pw`/`pd`) and the `j` loop splits into an
/// even-`j` branch (prefix corners only) and an odd-`j` branch (prefix
/// corners × the two last-dim neighbours) with no per-element branching.
/// Weight products and corner accumulation follow [`interp_at`]'s mask
/// order term for term (prefix bits low, last dim high; weights
/// multiplied prefix-first), so the hoisted form is bitwise identical.
fn run_rows_into_row<T: Real>(
    src: &[T],
    row_out: &mut [T],
    shape: Shape,
    axes: &[AxisInterp<T>],
    mode: Mode,
    r: usize,
) {
    let nd = shape.ndim();
    let row_len = shape.dim(Axis(nd - 1));
    debug_assert_eq!(row_out.len(), row_len);
    let last = &axes[nd - 1];
    let mut idx = [0usize; MAX_DIMS];
    let mut rem = r;
    for d in (0..nd - 1).rev() {
        idx[d] = rem % shape.dim(Axis(d));
        rem /= shape.dim(Axis(d));
    }
    let mut odd_prefix = [0usize; MAX_DIMS];
    let mut np = 0;
    for d in 0..nd - 1 {
        if axes[d].decimates && idx[d] % 2 == 1 {
            odd_prefix[np] = d;
            np += 1;
        }
    }
    if np == 0 && !last.decimates {
        return; // no odd node anywhere in this row
    }
    let nc = 1usize << np;
    let mut pw = [T::ONE; MAX_PREFIX_CORNERS];
    let mut pd = [0isize; MAX_PREFIX_CORNERS];
    for (m, (w_out, d_out)) in pw[..nc].iter_mut().zip(&mut pd[..nc]).enumerate() {
        let mut w = T::ONE;
        let mut off = 0isize;
        for (b, &d) in odd_prefix[..np].iter().enumerate() {
            let ax = &axes[d];
            if m & (1 << b) != 0 {
                w *= ax.wr[idx[d]];
                off += ax.stride as isize;
            } else {
                w *= ax.wl[idx[d]];
                off -= ax.stride as isize;
            }
        }
        *w_out = w;
        *d_out = off;
    }
    let base_row = r * row_len;
    let apply = |row_out: &mut [T], j: usize, nodal: T, v: T| match mode {
        Mode::Subtract => row_out[j] = nodal - v,
        Mode::Add => row_out[j] = nodal + v,
    };
    if last.decimates {
        // Even j: prefix corners only (skipped entirely when np == 0 —
        // those nodes are coarse).
        if np > 0 {
            for j in (0..row_len).step_by(2) {
                let off = (base_row + j) as isize;
                let mut acc = T::ZERO;
                for m in 0..nc {
                    acc += pw[m] * src[(off + pd[m]) as usize];
                }
                apply(row_out, j, src[off as usize], acc);
            }
        }
        // Odd j: each prefix corner splits into its left/right last-dim
        // neighbours; left half (last bit clear) accumulates first.
        let ls = last.stride as isize;
        for j in (1..row_len).step_by(2) {
            let off = (base_row + j) as isize;
            let (wlj, wrj) = (last.wl[j], last.wr[j]);
            let mut acc = T::ZERO;
            for m in 0..nc {
                acc += pw[m] * wlj * src[(off + pd[m] - ls) as usize];
            }
            for m in 0..nc {
                acc += pw[m] * wrj * src[(off + pd[m] + ls) as usize];
            }
            apply(row_out, j, src[off as usize], acc);
        }
    } else {
        // Bottomed-out last dim: every j interpolates over the prefix
        // corners (np > 0 here).
        for j in 0..row_len {
            let off = (base_row + j) as isize;
            let mut acc = T::ZERO;
            for m in 0..nc {
                acc += pw[m] * src[(off + pd[m]) as usize];
            }
            apply(row_out, j, src[off as usize], acc);
        }
    }
}

fn run_parallel<T: Real>(src: &[T], dst: &mut [T], ctx: &LevelCtx<T>, mode: Mode) {
    let shape = ctx.shape();
    assert_eq!(src.len(), shape.len());
    assert_eq!(dst.len(), shape.len());
    let axes = axis_interp(ctx);
    let nd = shape.ndim();
    let row_len = shape.dim(Axis(nd - 1));
    dst.copy_from_slice(src);
    dst.par_chunks_mut(row_len)
        .enumerate()
        .for_each(|(r, row)| {
            run_rows_into_row(src, row, shape, &axes, mode, r);
        });
}

/// Compute coefficients in place (serial): at every node odd along a
/// decimating dimension, `u <- u - Π_{l-1} u`. Even (coarse) nodes keep
/// their nodal values.
pub fn compute_serial<T: Real>(data: &mut [T], ctx: &LevelCtx<T>) {
    run_serial(data, ctx, Mode::Subtract);
}

/// Restore nodal values in place (serial): `u <- c + Π_{l-1} u` at odd
/// nodes. Exact inverse of [`compute_serial`].
pub fn restore_serial<T: Real>(data: &mut [T], ctx: &LevelCtx<T>) {
    run_serial(data, ctx, Mode::Add);
}

/// Parallel coefficient computation: reads `src`, writes the full result
/// (coarse nodes copied through) to `dst`.
pub fn compute_parallel<T: Real>(src: &[T], dst: &mut [T], ctx: &LevelCtx<T>) {
    run_parallel(src, dst, ctx, Mode::Subtract);
}

/// Parallel restoration, inverse of [`compute_parallel`].
pub fn restore_parallel<T: Real>(src: &[T], dst: &mut [T], ctx: &LevelCtx<T>) {
    run_parallel(src, dst, ctx, Mode::Add);
}

// ---------------------------------------------------------------------
// Stride-aware (view) entry points: the same grid-processing update on a
// dense-packed or embedded-strided `GridView` — the in-place layout's
// coefficient kernels. Writes touch nodes that are odd along at least one
// decimating dimension; reads touch only all-even corner nodes, so the
// two sets are disjoint and the update is safely in place.

/// Per-axis interpolation info with *view* strides.
pub(crate) fn axis_interp_view<T: Real>(ctx: &LevelCtx<T>, view: &GridView) -> Vec<AxisInterp<T>> {
    (0..ctx.ndim())
        .map(|d| {
            let (wl, wr) = ctx.interp_weights(Axis(d));
            AxisInterp {
                wl,
                wr,
                stride: view.stride(Axis(d)),
                decimates: ctx.decimates(Axis(d)),
            }
        })
        .collect()
}

/// The odd-dimension set of a logical index (decimating dims with odd
/// index), written into `odd`; returns its length.
#[inline]
pub(crate) fn odd_dims_of<T: Real>(
    idx: &[usize],
    axes: &[AxisInterp<T>],
    odd: &mut [usize; MAX_DIMS],
) -> usize {
    let mut k = 0;
    for (d, &i) in idx.iter().enumerate() {
        if axes[d].decimates && i % 2 == 1 {
            odd[k] = d;
            k += 1;
        }
    }
    k
}

fn run_view_serial<T: Real>(data: &mut [T], view: &GridView, ctx: &LevelCtx<T>, mode: Mode) {
    let shape = ctx.shape();
    assert_eq!(shape, view.shape(), "view must cover the level extents");
    assert_eq!(data.len(), view.backing_len());
    let axes = axis_interp_view(ctx, view);
    let nd = shape.ndim();
    let row_len = shape.dim(Axis(nd - 1));
    let rows = shape.len() / row_len;
    let last_stride = view.stride(Axis(nd - 1));
    let mut idx = [0usize; MAX_DIMS];
    let mut odd = [0usize; MAX_DIMS];
    for r in 0..rows {
        let mut rem = r;
        for d in (0..nd - 1).rev() {
            idx[d] = rem % shape.dim(Axis(d));
            rem /= shape.dim(Axis(d));
        }
        let row_base: usize = (0..nd - 1).map(|d| idx[d] * view.stride(Axis(d))).sum();
        let np = odd_dims_of(&idx[..nd - 1], &axes, &mut odd);
        let last = &axes[nd - 1];
        for j in 0..row_len {
            idx[nd - 1] = j;
            let j_odd = last.decimates && j % 2 == 1;
            if np == 0 && !j_odd {
                continue;
            }
            let mut k = np;
            if j_odd {
                odd[k] = nd - 1;
                k += 1;
            }
            let off = row_base + j * last_stride;
            let v = interp_at(data, off, &idx[..nd], &axes, &odd[..k]);
            match mode {
                Mode::Subtract => data[off] -= v,
                Mode::Add => data[off] += v,
            }
        }
    }
}

/// Gather the all-even corner lattice of the level into `corners`
/// (dense, [`LevelCtx::coarse_shape`] extents): decimating dims keep even
/// indices only, bottomed-out dims pass through whole.
fn gather_corner_lattice<T: Real>(
    data: &[T],
    view: &GridView,
    ctx: &LevelCtx<T>,
    corners: &mut Vec<T>,
) -> Shape {
    let cshape = ctx.coarse_shape();
    corners.clear();
    corners.resize(cshape.len(), T::ZERO);
    let nd = cshape.ndim();
    let mut c = 0usize;
    let mut idx = [0usize; MAX_DIMS];
    loop {
        let mut off = 0usize;
        for d in 0..nd {
            let i = if ctx.decimates(Axis(d)) {
                idx[d] * 2
            } else {
                idx[d]
            };
            off += i * view.stride(Axis(d));
        }
        corners[c] = data[off];
        c += 1;
        let mut d = nd;
        loop {
            if d == 0 {
                return cshape;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < cshape.dim(Axis(d)) {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// Multilinear interpolant at `idx` reading the dense corner lattice.
/// Follows [`interp_at`]'s mask/weight order exactly so the two paths
/// produce bitwise-identical sums.
#[inline]
fn interp_from_corners<T: Real>(
    corners: &[T],
    cstrides: &[usize; MAX_DIMS],
    idx: &[usize],
    axes: &[AxisInterp<T>],
    odd_dims: &[usize],
) -> T {
    let k = odd_dims.len();
    debug_assert!(k >= 1);
    // Base = the all-left corner: odd indices floor to their left (even)
    // neighbour, even indices map through.
    let mut base = 0usize;
    for (d, &i) in idx.iter().enumerate() {
        let c = if axes[d].decimates { i >> 1 } else { i };
        base += c * cstrides[d];
    }
    let mut acc = T::ZERO;
    for mask in 0u32..(1u32 << k) {
        let mut w = T::ONE;
        let mut off = base;
        for (b, &d) in odd_dims.iter().enumerate() {
            let ax = &axes[d];
            if mask & (1 << b) != 0 {
                w *= ax.wr[idx[d]];
                off += cstrides[d];
            } else {
                w *= ax.wl[idx[d]];
            }
        }
        acc += w * corners[off];
    }
    acc
}

/// Parallel view update: reads all corner values from a gathered snapshot
/// (the interpolation sources are all-even nodes the kernel never writes),
/// then updates odd nodes chunk-parallel over dimension-0 slabs. `corners`
/// is caller-provided scratch, resized to the coarse lattice.
fn run_view_parallel<T: Real>(
    data: &mut [T],
    view: &GridView,
    ctx: &LevelCtx<T>,
    mode: Mode,
    corners: &mut Vec<T>,
) {
    let shape = ctx.shape();
    let nd = shape.ndim();
    if nd == 1 {
        // A single fiber: nothing to batch, the serial walk is the kernel.
        run_view_serial(data, view, ctx, mode);
        return;
    }
    assert_eq!(shape, view.shape(), "view must cover the level extents");
    assert_eq!(data.len(), view.backing_len());
    let cshape = gather_corner_lattice(data, view, ctx, corners);
    let cstrides = cshape.strides();
    let axes = axis_interp_view(ctx, view);
    let row_len = shape.dim(Axis(nd - 1));
    let last_stride = view.stride(Axis(nd - 1));
    // Slabs of one view step along dimension 0 each contain exactly one
    // level hyperplane (all nodes with that dim-0 index), so writes stay
    // chunk-local while reads go to the shared corner snapshot.
    let slab = view.stride(Axis(0));
    let n0 = shape.dim(Axis(0));
    let corners: &[T] = corners;
    let axes = &axes;
    data.par_chunks_mut(slab)
        .enumerate()
        .for_each(|(i0, chunk)| {
            if i0 >= n0 {
                return; // trailing non-level rows of the finest array
            }
            let mut idx = [0usize; MAX_DIMS];
            let mut odd = [0usize; MAX_DIMS];
            idx[0] = i0;
            let mid_rows: usize = (1..nd - 1).map(|d| shape.dim(Axis(d))).product();
            let last = &axes[nd - 1];
            for r in 0..mid_rows {
                let mut rem = r;
                for d in (1..nd - 1).rev() {
                    idx[d] = rem % shape.dim(Axis(d));
                    rem /= shape.dim(Axis(d));
                }
                let row_base: usize = (1..nd - 1).map(|d| idx[d] * view.stride(Axis(d))).sum();
                let np = odd_dims_of(&idx[..nd - 1], axes, &mut odd);
                for j in 0..row_len {
                    idx[nd - 1] = j;
                    let j_odd = last.decimates && j % 2 == 1;
                    if np == 0 && !j_odd {
                        continue;
                    }
                    let mut k = np;
                    if j_odd {
                        odd[k] = nd - 1;
                        k += 1;
                    }
                    let off = row_base + j * last_stride;
                    let v = interp_from_corners(corners, &cstrides, &idx[..nd], axes, &odd[..k]);
                    match mode {
                        Mode::Subtract => chunk[off] -= v,
                        Mode::Add => chunk[off] += v,
                    }
                }
            }
        });
}

/// Compute coefficients in place on a stride-aware view (serial): the
/// view-layout analogue of [`compute_serial`], used by the in-place
/// execution plan directly on the finest array.
pub fn compute_view_serial<T: Real>(data: &mut [T], view: &GridView, ctx: &LevelCtx<T>) {
    run_view_serial(data, view, ctx, Mode::Subtract);
}

/// Restore nodal values in place on a stride-aware view (serial); exact
/// inverse of [`compute_view_serial`].
pub fn restore_view_serial<T: Real>(data: &mut [T], view: &GridView, ctx: &LevelCtx<T>) {
    run_view_serial(data, view, ctx, Mode::Add);
}

/// Parallel in-place coefficient computation on a view. `corners` is
/// caller scratch for the all-even corner snapshot (≈ `1/2^d` of the
/// level size — far below a packed copy).
pub fn compute_view_parallel<T: Real>(
    data: &mut [T],
    view: &GridView,
    ctx: &LevelCtx<T>,
    corners: &mut Vec<T>,
) {
    run_view_parallel(data, view, ctx, Mode::Subtract, corners);
}

/// Parallel in-place restoration on a view, inverse of
/// [`compute_view_parallel`].
pub fn restore_view_parallel<T: Real>(
    data: &mut [T],
    view: &GridView,
    ctx: &LevelCtx<T>,
    corners: &mut Vec<T>,
) {
    run_view_parallel(data, view, ctx, Mode::Add, corners);
}

/// Gather the coefficient array `C_l` — coefficients at the odd nodes,
/// zeros at the coarse nodes — from a view into the dense buffer the
/// correction pipeline expects. The in-place driver's replacement for
/// `pack_level` + [`zero_coarse`]: it reads *only* the odd nodes.
pub fn gather_coeffs_view<T: Real>(
    data: &[T],
    view: &GridView,
    ctx: &LevelCtx<T>,
    out: &mut Vec<T>,
) {
    let shape = ctx.shape();
    assert_eq!(shape, view.shape());
    assert_eq!(data.len(), view.backing_len());
    let nd = shape.ndim();
    out.clear();
    out.resize(shape.len(), T::ZERO);
    let row_len = shape.dim(Axis(nd - 1));
    let rows = shape.len() / row_len;
    let last_stride = view.stride(Axis(nd - 1));
    let last_dec = ctx.decimates(Axis(nd - 1));
    let mut idx = [0usize; MAX_DIMS];
    let mut p = 0usize;
    for r in 0..rows {
        let mut rem = r;
        for d in (0..nd - 1).rev() {
            idx[d] = rem % shape.dim(Axis(d));
            rem /= shape.dim(Axis(d));
        }
        let row_base: usize = (0..nd - 1).map(|d| idx[d] * view.stride(Axis(d))).sum();
        let row_odd = (0..nd - 1).any(|d| ctx.decimates(Axis(d)) && idx[d] % 2 == 1);
        for j in 0..row_len {
            if row_odd || (last_dec && j % 2 == 1) {
                out[p] = data[row_base + j * last_stride];
            }
            p += 1;
        }
    }
}

/// Stage the coefficient array `C_l` *embedded* in the finest index space:
/// `out` is sized to the view's backing length and, at every view node,
/// receives the coefficient (odd nodes) or zero (coarse nodes); non-view
/// positions are left untouched (the strided pipeline never reads them).
/// The [`crate::Layout::Strided`] driver's replacement for
/// `pack_level` + [`zero_coarse`].
pub fn stage_coeffs_embedded<T: Real>(
    data: &[T],
    view: &GridView,
    ctx: &LevelCtx<T>,
    out: &mut Vec<T>,
) {
    let shape = ctx.shape();
    assert_eq!(shape, view.shape());
    assert_eq!(data.len(), view.backing_len());
    let nd = shape.ndim();
    if out.len() < view.backing_len() {
        out.resize(view.backing_len(), T::ZERO);
    }
    let row_len = shape.dim(Axis(nd - 1));
    let rows = shape.len() / row_len;
    let last_stride = view.stride(Axis(nd - 1));
    let last_dec = ctx.decimates(Axis(nd - 1));
    let mut idx = [0usize; MAX_DIMS];
    for r in 0..rows {
        let mut rem = r;
        for d in (0..nd - 1).rev() {
            idx[d] = rem % shape.dim(Axis(d));
            rem /= shape.dim(Axis(d));
        }
        let row_base: usize = (0..nd - 1).map(|d| idx[d] * view.stride(Axis(d))).sum();
        let row_odd = (0..nd - 1).any(|d| ctx.decimates(Axis(d)) && idx[d] % 2 == 1);
        for j in 0..row_len {
            let off = row_base + j * last_stride;
            out[off] = if row_odd || (last_dec && j % 2 == 1) {
                data[off]
            } else {
                T::ZERO
            };
        }
    }
}

/// Zero every coarse node (even along all decimating dimensions), leaving
/// the coefficient array `C_l` the correction pipeline expects (paper §II:
/// "coefficients at N_l \ N_{l-1} and zeros at N_{l-1}").
pub fn zero_coarse<T: Real>(data: &mut [T], ctx: &LevelCtx<T>) {
    let shape = ctx.shape();
    assert_eq!(data.len(), shape.len());
    let nd = shape.ndim();
    let dec: Vec<bool> = (0..nd).map(|d| ctx.decimates(Axis(d))).collect();
    for (off, idx) in shape.indices().enumerate() {
        let coarse = (0..nd).all(|d| !dec[d] || idx[d] % 2 == 0);
        if coarse {
            data[off] = T::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_grid::{CoordSet, Hierarchy, NdArray};

    fn ctx_for<T: Real>(shape: Shape, coords: &CoordSet<T>, l: usize) -> LevelCtx<T> {
        let h = Hierarchy::new(shape).unwrap();
        let ld = h.level_dims(l);
        let cs = (0..shape.ndim())
            .map(|d| coords.level_coords(&h, l, Axis(d)))
            .collect();
        LevelCtx::new(ld.shape, cs)
    }

    #[test]
    fn linear_data_has_zero_coefficients_1d() {
        let shape = Shape::d1(9);
        let coords = CoordSet::<f64>::stretched(shape, 0.3);
        let ctx = ctx_for(shape, &coords, 3);
        let mut data: Vec<f64> = coords.dim(Axis(0)).iter().map(|&x| 3.0 * x - 1.0).collect();
        compute_serial(&mut data, &ctx);
        for i in (1..9).step_by(2) {
            assert!(data[i].abs() < 1e-14, "coeff at {i} = {}", data[i]);
        }
        // even nodes untouched
        assert!((data[0] - (-1.0)).abs() < 1e-15);
    }

    #[test]
    fn quadratic_1d_uniform_coefficients() {
        // Paper Fig. 2: y = x^2 - 6x + 5 on a uniform grid. The coefficient
        // of a quadratic at an odd midpoint is -h^2 f''/2 / ... concretely:
        // u(m) - (u(m-h)+u(m+h))/2 = -h^2 for f'' = 2, i.e. -(h^2).
        let xs: Vec<f64> = (0..5).map(|i| i as f64).collect(); // h = 1
        let ctx = LevelCtx::new(Shape::d1(5), vec![xs.clone()]);
        let mut data: Vec<f64> = xs.iter().map(|&x| x * x - 6.0 * x + 5.0).collect();
        compute_serial(&mut data, &ctx);
        assert!((data[1] - (-1.0)).abs() < 1e-14);
        assert!((data[3] - (-1.0)).abs() < 1e-14);
    }

    #[test]
    fn compute_restore_round_trip_2d() {
        let shape = Shape::d2(5, 9);
        let coords = CoordSet::<f64>::stretched(shape, 0.2);
        let ctx = ctx_for(shape, &coords, Hierarchy::new(shape).unwrap().nlevels());
        let orig = NdArray::from_fn(shape, |i| ((i[0] * 7 + i[1] * 13) % 11) as f64 * 0.37 + 1.0);
        let mut data = orig.as_slice().to_vec();
        compute_serial(&mut data, &ctx);
        assert_ne!(data, orig.as_slice());
        restore_serial(&mut data, &ctx);
        for (a, b) in data.iter().zip(orig.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn serial_and_parallel_agree_3d() {
        let shape = Shape::d3(5, 5, 9);
        let coords = CoordSet::<f64>::stretched(shape, 0.25);
        let ctx = ctx_for(shape, &coords, Hierarchy::new(shape).unwrap().nlevels());
        let orig: Vec<f64> = (0..shape.len())
            .map(|i| ((i * 37) % 101) as f64 * 0.01)
            .collect();

        let mut serial = orig.clone();
        compute_serial(&mut serial, &ctx);

        let mut par = vec![0.0f64; orig.len()];
        compute_parallel(&orig, &mut par, &ctx);
        assert_eq!(serial, par);

        let mut rs = vec![0.0f64; orig.len()];
        restore_parallel(&par, &mut rs, &ctx);
        for (a, b) in rs.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn bilinear_data_zero_coefficients_2d_nonuniform() {
        let shape = Shape::d2(9, 5);
        let coords = CoordSet::<f64>::stretched(shape, 0.3);
        let ctx = ctx_for(shape, &coords, Hierarchy::new(shape).unwrap().nlevels());
        let xs = coords.dim(Axis(0)).to_vec();
        let ys = coords.dim(Axis(1)).to_vec();
        let mut data = Vec::new();
        for &x in &xs {
            for &y in &ys {
                data.push(2.0 * x - 3.0 * y + 4.0 + 5.0 * x * y); // bilinear
            }
        }
        let mut out = data.clone();
        compute_serial(&mut out, &ctx);
        for (off, idx) in shape.indices().enumerate() {
            if idx[0] % 2 == 1 || idx[1] % 2 == 1 {
                assert!(out[off].abs() < 1e-13, "idx {idx:?}: {}", out[off]);
            } else {
                assert_eq!(out[off], data[off]);
            }
        }
    }

    #[test]
    fn bottomed_out_dim_is_passthrough() {
        // 2 x 5: dim 0 bottomed out; only dim-1-odd nodes become coeffs.
        let ctx = LevelCtx::new(
            Shape::d2(2, 5),
            vec![vec![0.0f64, 1.0], vec![0.0, 0.25, 0.5, 0.75, 1.0]],
        );
        let mut data = vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let orig = data.clone();
        compute_serial(&mut data, &ctx);
        // nodes (i, even j) untouched for all i
        for i in 0..2 {
            for j in [0usize, 2, 4] {
                assert_eq!(data[i * 5 + j], orig[i * 5 + j]);
            }
        }
        // node (1, 1): interp along dim 1 only: (v[1][0]+v[1][2])/2
        assert!((data[5 + 1] - (7.0 - (6.0 + 8.0) / 2.0)).abs() < 1e-15);
    }

    #[test]
    fn zero_coarse_zeroes_exactly_coarse_nodes() {
        let shape = Shape::d2(5, 5);
        let coords = CoordSet::<f64>::uniform(shape);
        let ctx = ctx_for(shape, &coords, 2);
        let mut data = vec![1.0f64; 25];
        zero_coarse(&mut data, &ctx);
        let zeros = data.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 9); // 3x3 coarse nodes
        assert_eq!(data[0], 0.0);
        assert_eq!(data[2 * 5 + 4], 0.0);
        assert_eq!(data[1], 1.0);
    }

    #[test]
    fn f32_round_trip() {
        let shape = Shape::d2(9, 9);
        let coords = CoordSet::<f32>::uniform(shape);
        let ctx = ctx_for(shape, &coords, 3);
        let orig: Vec<f32> = (0..81).map(|i| ((i * 13) % 17) as f32 * 0.3).collect();
        let mut data = orig.clone();
        compute_serial(&mut data, &ctx);
        restore_serial(&mut data, &ctx);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
