//! Transfer-matrix multiplication along one axis (linear-processing kernel).
//!
//! The transfer matrix `R_l` converts a load vector expressed in the fine
//! (level-`l`) nodal basis into the coarse (level-`l-1`) basis; it is the
//! transpose of the piecewise-linear prolongation `P`:
//!
//! ```text
//! (R v)_j = v[2j]
//!         + v[2j-1] * (x[2j-1] - x[2j-2]) / (x[2j] - x[2j-2])   (if j > 0)
//!         + v[2j+1] * (x[2j+2] - x[2j+1]) / (x[2j+2] - x[2j])   (if j < m-1)
//! ```
//!
//! where `x` are the fine level coordinates. The output fiber has
//! `m = (n+1)/2` elements. Non-decimating (2-node) axes use `R = I` and are
//! skipped by the correction driver.

use mg_grid::fiber::{fiber_base, fiber_spec};
use mg_grid::{Axis, GridView, Real, Shape};
use rayon::prelude::*;

/// Weights `(w_left_odd[j], w_right_odd[j])` of the two odd fine neighbours
/// feeding coarse node `j`. Index 0 of `w_left_odd` and the last entry of
/// `w_right_odd` are unused (no neighbour beyond the boundary).
pub fn restriction_weights<T: Real>(fine_coords: &[T]) -> (Vec<T>, Vec<T>) {
    let n = fine_coords.len();
    assert!(
        n >= 3 && n % 2 == 1,
        "fine extent must be odd >= 3, got {n}"
    );
    let m = n.div_ceil(2);
    let x = fine_coords;
    let mut wl = vec![T::ZERO; m];
    let mut wr = vec![T::ZERO; m];
    for j in 0..m {
        if j > 0 {
            // odd node 2j-1 between coarse 2j-2 and 2j
            wl[j] = (x[2 * j - 1] - x[2 * j - 2]) / (x[2 * j] - x[2 * j - 2]);
        }
        if j + 1 < m {
            // odd node 2j+1 between coarse 2j and 2j+2
            wr[j] = (x[2 * j + 2] - x[2 * j + 1]) / (x[2 * j + 2] - x[2 * j]);
        }
    }
    (wl, wr)
}

/// Serial `dst <- R src` along `axis`.
///
/// `src` has extent `n` along `axis`; `dst` must have extent `(n+1)/2`
/// along `axis` and identical extents elsewhere.
pub fn transfer_apply_serial<T: Real>(
    src: &[T],
    src_shape: Shape,
    dst: &mut [T],
    axis: Axis,
    fine_coords: &[T],
) {
    let (dst_shape, wl, wr) = prepare::<T>(src, src_shape, dst, axis, fine_coords);
    let sspec = fiber_spec(src_shape, axis);
    let dspec = fiber_spec(dst_shape, axis);
    let m = dspec.len;
    let n = sspec.len;
    if sspec.stride > 1 {
        // Plane-batched: each outer block restricts rows of `stride`
        // interleaved fibers through stride-1 span primitives.
        debug_assert_eq!(sspec.stride, dspec.stride, "inner extents are unchanged");
        let inner = dspec.stride;
        for (dblk, sblk) in dst.chunks_mut(m * inner).zip(src.chunks(n * inner)) {
            transfer_block(dblk, sblk, inner, m, &wl, &wr);
        }
        return;
    }
    for f in 0..dspec.count {
        let sbase = fiber_base(src_shape, axis, f);
        let dbase = fiber_base(dst_shape, axis, f);
        for j in 0..m {
            let mut t = src[sbase + 2 * j * sspec.stride];
            if j > 0 {
                t += wl[j] * src[sbase + (2 * j - 1) * sspec.stride];
            }
            if j + 1 < m {
                t += wr[j] * src[sbase + (2 * j + 1) * sspec.stride];
            }
            dst[dbase + j * dspec.stride] = t;
        }
    }
}

/// Restriction of one contiguous block (`2m-1 x inner` fine rows into
/// `m x inner` coarse rows), boundary rows hoisted to two-term
/// [`SpanOps`](mg_grid::span::SpanOps) primitives. `m >= 2`
/// (decimating axis).
pub(crate) fn transfer_block<T: Real>(
    dblk: &mut [T],
    sblk: &[T],
    inner: usize,
    m: usize,
    wl: &[T],
    wr: &[T],
) {
    for j in 0..m {
        let srow = 2 * j * inner;
        let dst = &mut dblk[j * inner..(j + 1) * inner];
        let even = &sblk[srow..srow + inner];
        if j == 0 {
            T::restrict_first(dst, even, &sblk[srow + inner..srow + 2 * inner], wr[j]);
        } else if j + 1 == m {
            T::restrict_last(dst, &sblk[srow - inner..srow], even, wl[j]);
        } else {
            T::restrict_interior(
                dst,
                &sblk[srow - inner..srow],
                even,
                &sblk[srow + inner..srow + 2 * inner],
                wl[j],
                wr[j],
            );
        }
    }
}

/// Parallel `dst <- R src` along `axis` (plane-batched over outer blocks).
pub fn transfer_apply_parallel<T: Real>(
    src: &[T],
    src_shape: Shape,
    dst: &mut [T],
    axis: Axis,
    fine_coords: &[T],
) {
    let (dst_shape, wl, wr) = prepare::<T>(src, src_shape, dst, axis, fine_coords);
    let sspec = fiber_spec(src_shape, axis);
    let dspec = fiber_spec(dst_shape, axis);
    debug_assert_eq!(sspec.stride, dspec.stride, "inner extents are unchanged");
    let inner = dspec.stride;
    let m = dspec.len;
    let n = sspec.len;
    dst.par_chunks_mut(m * inner)
        .zip(src.par_chunks(n * inner))
        .for_each(|(dblk, sblk)| transfer_block(dblk, sblk, inner, m, &wl, &wr));
}

/// Stride-aware `dst <- R src` reading the fine fibers of a [`GridView`]
/// (dense-packed or embedded-strided) and writing a dense coarse-extent
/// array; same per-node arithmetic as [`transfer_apply_serial`].
pub fn transfer_apply_view_serial<T: Real>(
    src: &[T],
    view: &GridView,
    dst: &mut [T],
    axis: Axis,
    fine_coords: &[T],
) {
    let src_shape = view.shape();
    let n = src_shape.dim(axis);
    assert_eq!(src.len(), view.backing_len());
    assert_eq!(fine_coords.len(), n);
    assert!(n >= 3 && n % 2 == 1, "transfer needs a decimating axis");
    let m = n.div_ceil(2);
    let dst_shape = src_shape.with_dim(axis, m);
    assert_eq!(dst.len(), dst_shape.len(), "dst must have coarse extent");
    let (wl, wr) = restriction_weights::<T>(fine_coords);
    let sstride = view.stride(axis);
    let dspec = fiber_spec(dst_shape, axis);
    view.for_each_fiber_base(axis, |f, sbase| {
        let dbase = fiber_base(dst_shape, axis, f);
        for j in 0..m {
            let mut t = src[sbase + 2 * j * sstride];
            if j > 0 {
                t += wl[j] * src[sbase + (2 * j - 1) * sstride];
            }
            if j + 1 < m {
                t += wr[j] * src[sbase + (2 * j + 1) * sstride];
            }
            dst[dbase + j * dspec.stride] = t;
        }
    });
}

/// Stride-aware in-place `v <- R v` along `axis`, writing coarse node `j`
/// at the position of **fine node `2j`** of the view — the naive strided
/// design (Fig. 7): the coarse result stays embedded in the finest index
/// space and the view's stride along `axis` doubles
/// ([`mg_grid::GridView::coarsened`]). Same per-node arithmetic as
/// [`transfer_apply_serial`], so results are bitwise identical.
///
/// Safe in place walking `j` forward: writes land on even fine indices
/// `2j`, while every not-yet-computed output `j' > j` reads fine indices
/// `>= 2j' - 1 > 2j`.
pub fn transfer_apply_view_inplace<T: Real>(
    data: &mut [T],
    view: &GridView,
    axis: Axis,
    fine_coords: &[T],
) {
    let n = view.shape().dim(axis);
    assert_eq!(data.len(), view.backing_len());
    assert_eq!(fine_coords.len(), n);
    assert!(n >= 3 && n % 2 == 1, "transfer needs a decimating axis");
    let m = n.div_ceil(2);
    let (wl, wr) = restriction_weights::<T>(fine_coords);
    let stride = view.stride(axis);
    view.for_each_fiber_base(axis, |_, base| {
        for j in 0..m {
            let mut t = data[base + 2 * j * stride];
            if j > 0 {
                t += wl[j] * data[base + (2 * j - 1) * stride];
            }
            if j + 1 < m {
                t += wr[j] * data[base + (2 * j + 1) * stride];
            }
            data[base + 2 * j * stride] = t;
        }
    });
}

fn prepare<T: Real>(
    src: &[T],
    src_shape: Shape,
    dst: &[T],
    axis: Axis,
    fine_coords: &[T],
) -> (Shape, Vec<T>, Vec<T>) {
    let n = src_shape.dim(axis);
    assert_eq!(src.len(), src_shape.len());
    assert_eq!(fine_coords.len(), n);
    assert!(n >= 3 && n % 2 == 1, "transfer needs a decimating axis");
    let m = n.div_ceil(2);
    let dst_shape = src_shape.with_dim(axis, m);
    assert_eq!(dst.len(), dst_shape.len(), "dst must have coarse extent");
    let (wl, wr) = restriction_weights::<T>(fine_coords);
    (dst_shape, wl, wr)
}

/// Prolongation (coarse -> fine linear interpolation), the transpose of the
/// restriction. Used by tests and by the orthogonality checks in
/// `correction`.
pub fn prolong_1d<T: Real>(coarse: &[T], fine_coords: &[T]) -> Vec<T> {
    let n = fine_coords.len();
    let m = n.div_ceil(2);
    assert_eq!(coarse.len(), m);
    let x = fine_coords;
    let mut out = vec![T::ZERO; n];
    for j in 0..m {
        out[2 * j] = coarse[j];
    }
    for j in 0..m - 1 {
        let o = 2 * j + 1;
        let t = (x[o] - x[2 * j]) / (x[2 * j + 2] - x[2 * j]);
        out[o] = coarse[j] * (T::ONE - t) + coarse[j + 1] * t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_are_half() {
        let coords: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let (wl, wr) = restriction_weights(&coords);
        assert_eq!(wl[1], 0.5);
        assert_eq!(wr[0], 0.5);
        assert_eq!(wl[0], 0.0);
        assert_eq!(wr[2], 0.0);
    }

    #[test]
    fn restriction_is_prolongation_transpose() {
        // <R u, v>_coarse-dot == <u, P v>_fine-dot for arbitrary u, v.
        let coords = vec![0.0f64, 0.2, 0.5, 0.8, 1.0, 1.7, 2.0];
        let u: Vec<f64> = vec![1.0, -1.0, 2.0, 0.3, -0.7, 1.2, 0.4];
        let v: Vec<f64> = vec![0.5, 1.5, -2.0, 0.9];
        let mut ru = vec![0.0f64; 4];
        transfer_apply_serial(&u, Shape::d1(7), &mut ru, Axis(0), &coords);
        let pv = prolong_1d(&v, &coords);
        let lhs: f64 = ru.iter().zip(&v).map(|(a, b)| a * b).sum();
        let rhs: f64 = u.iter().zip(&pv).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn identity_on_coarse_supported_vectors() {
        // A vector that is zero at odd nodes restricts to its even part.
        let coords: Vec<f64> = (0..5).map(|i| i as f64 * 0.25).collect();
        let u = vec![3.0f64, 0.0, -1.0, 0.0, 2.0];
        let mut out = vec![0.0f64; 3];
        transfer_apply_serial(&u, Shape::d1(5), &mut out, Axis(0), &coords);
        assert_eq!(out, vec![3.0, -1.0, 2.0]);
    }

    #[test]
    fn serial_and_parallel_agree_all_axes_3d() {
        let shape = Shape::d3(5, 9, 5);
        let src: Vec<f64> = (0..shape.len())
            .map(|i| ((i * 17) % 23) as f64 * 0.13)
            .collect();
        for ax in 0..3 {
            let n = shape.dim(Axis(ax));
            let coords: Vec<f64> = (0..n)
                .map(|i| (i as f64).mul_add(0.4, (i as f64).sqrt() * 0.05))
                .collect();
            let m = n.div_ceil(2);
            let out_len = shape.len() / n * m;
            let mut ser = vec![0.0f64; out_len];
            transfer_apply_serial(&src, shape, &mut ser, Axis(ax), &coords);
            let mut par = vec![0.0f64; out_len];
            transfer_apply_parallel(&src, shape, &mut par, Axis(ax), &coords);
            assert_eq!(ser, par, "axis {ax}");
        }
    }

    #[test]
    fn view_kernel_matches_packed_on_embedded_levels() {
        // Reading the fine fibers through an embedded view must produce
        // the same dense coarse array as pack -> packed transfer.
        use mg_grid::pack::pack_level;
        use mg_grid::{GridView, Hierarchy};
        let full = Shape::d2(17, 9);
        let hier = Hierarchy::new(full).unwrap();
        let src: Vec<f64> = (0..full.len())
            .map(|i| ((i * 23 + 3) % 41) as f64 * 0.17 - 1.0)
            .collect();
        for l in 1..=hier.nlevels() {
            let ld = hier.level_dims(l);
            let view = GridView::embedded(full, &ld);
            for ax in 0..2 {
                let n = ld.shape.dim(Axis(ax));
                if n < 3 {
                    continue; // bottomed-out axis: no transfer
                }
                let coords: Vec<f64> = (0..n).map(|i| i as f64 * 0.3 + 0.2).collect();
                let m = n.div_ceil(2);
                let out_len = ld.shape.len() / n * m;

                let mut packed = Vec::new();
                pack_level(&src, full, &ld, &mut packed);
                let mut expect = vec![0.0f64; out_len];
                transfer_apply_serial(&packed, ld.shape, &mut expect, Axis(ax), &coords);

                let mut got = vec![0.0f64; out_len];
                transfer_apply_view_serial(&src, &view, &mut got, Axis(ax), &coords);
                assert_eq!(got, expect, "level {l} axis {ax}");
            }
        }
    }

    #[test]
    fn view_inplace_matches_dense_on_embedded_levels() {
        // The embedded in-place restriction must leave, at the positions of
        // the coarsened view, exactly the dense coarse array the serial
        // kernel produces.
        use mg_grid::{GridView, Hierarchy};
        let full = Shape::d2(17, 9);
        let hier = Hierarchy::new(full).unwrap();
        let src: Vec<f64> = (0..full.len())
            .map(|i| ((i * 29 + 7) % 43) as f64 * 0.19 - 1.0)
            .collect();
        for l in 1..=hier.nlevels() {
            let ld = hier.level_dims(l);
            let view = GridView::embedded(full, &ld);
            for ax in 0..2 {
                let n = ld.shape.dim(Axis(ax));
                if n < 3 {
                    continue;
                }
                let coords: Vec<f64> = (0..n).map(|i| i as f64 * 0.7 + 0.3).collect();
                let m = n.div_ceil(2);
                let out_len = ld.shape.len() / n * m;

                let mut expect = vec![0.0f64; out_len];
                transfer_apply_view_serial(&src, &view, &mut expect, Axis(ax), &coords);

                let mut got = src.clone();
                transfer_apply_view_inplace(&mut got, &view, Axis(ax), &coords);
                let coarse = view.coarsened(Axis(ax));
                let mut at_coarse = vec![0.0f64; out_len];
                coarse.for_each_offset(|p, u| at_coarse[p] = got[u]);
                assert_eq!(at_coarse, expect, "level {l} axis {ax}");
            }
        }
    }

    #[test]
    fn prolong_reproduces_linears() {
        let coords = vec![0.0f64, 0.3, 0.5, 0.75, 1.0];
        let f = |x: f64| 2.0 * x + 1.0;
        let coarse: Vec<f64> = [0.0, 0.5, 1.0].iter().map(|&x| f(x)).collect();
        let fine = prolong_1d(&coarse, &coords);
        for (i, &x) in coords.iter().enumerate() {
            assert!((fine[i] - f(x)).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "decimating axis")]
    fn rejects_two_node_axis() {
        let mut out = vec![0.0f64; 1];
        transfer_apply_serial(&[1.0, 2.0], Shape::d1(2), &mut out, Axis(0), &[0.0, 1.0]);
    }
}
