//! Fused tile-resident mass + restriction pass for the tiled layout.
//!
//! The unfused correction streams the level data three times per axis:
//! mass multiply (in place), restriction (out of place), then the Thomas
//! solve. The first two are fusable because the mass output is consumed
//! *only* by the restriction — so [`mass_restrict_fused`] reads the
//! original data read-only, computes each needed mass row on the fly in a
//! sliding three-row window of lane buffers, combines it immediately with
//! the restriction weights, and writes coarse rows straight to the
//! destination. Each tile's working set (three `inner`-sized lanes plus
//! the fine rows it reads) stays cache-resident across both kernels, and
//! one full write + one full read of the fine array disappear compared to
//! the unfused sequence.
//!
//! Because the source is immutable, tiles need **no halo exchange at
//! all** — a coarse-row tile simply reads the fine rows `2j - 2 ..= 2j +
//! 2` it depends on, unlike the in-place mass kernel whose tile
//! boundaries race with neighbour tiles.
//!
//! The Thomas solve stays a separate sweep: its forward/backward
//! recurrences are global along the axis, so it cannot be made
//! tile-resident without changing the factorization (and therefore the
//! bits).
//!
//! **Bitwise contract:** every mass row is computed from original values
//! with the exact accumulation order of [`crate::mass::mass_apply_serial`]
//! (`t = b*cur; t += a*prev; t += c*next`), and the combine step uses the
//! order of [`crate::transfer::transfer_apply_serial`] (`t = even; t +=
//! wl*left; t += wr*right`), both via the shared span primitives — so the
//! fused result is bitwise identical to the unfused pair for every tile
//! size and threading.

use crate::mass::mass_row;
use crate::transfer::restriction_weights;
use mg_grid::{Axis, Real, Shape};
use rayon::prelude::*;

/// Sliding window of mass-row lanes: the mass values of fine rows
/// `2j - 1`, `2j`, `2j + 1` while coarse row `j` is being emitted.
struct MassLanes<T> {
    left: Vec<T>,
    even: Vec<T>,
    right: Vec<T>,
}

impl<T: Real> MassLanes<T> {
    fn new(inner: usize) -> Self {
        MassLanes {
            left: vec![T::ZERO; inner],
            even: vec![T::ZERO; inner],
            right: vec![T::ZERO; inner],
        }
    }
}

/// Compute the mass multiply of fine row `i` of `sblk` into `lane`,
/// branch-hoisted onto the span primitives (`n >= 3` here, so the
/// degenerate single-row case cannot occur).
#[inline]
fn mass_row_into<T: Real>(lane: &mut [T], sblk: &[T], inner: usize, n: usize, i: usize, h: &[T]) {
    let (a, b, c) = mass_row(h, i);
    let row = i * inner;
    let cur = &sblk[row..row + inner];
    if i == 0 {
        T::mass_first(lane, cur, &sblk[row + inner..], b, c);
    } else if i + 1 == n {
        T::mass_last(lane, &sblk[row - inner..], cur, a, b);
    } else {
        T::mass_interior(
            lane,
            &sblk[row - inner..],
            cur,
            &sblk[row + inner..],
            a,
            b,
            c,
        );
    }
}

/// Emit coarse rows `[j0, j0 + dblk.len() / inner)` of one outer block:
/// `dblk[j] <- M[2j] + wl[j]*M[2j-1] + wr[j]*M[2j+1]` where `M[i]` is the
/// mass multiply of fine row `i` of `sblk`, computed on the fly.
#[allow(clippy::too_many_arguments)]
fn fused_block<T: Real>(
    sblk: &[T],
    dblk: &mut [T],
    inner: usize,
    n: usize,
    m: usize,
    j0: usize,
    h: &[T],
    wl: &[T],
    wr: &[T],
    lanes: &mut MassLanes<T>,
) {
    let j1 = j0 + dblk.len() / inner;
    debug_assert!(j1 <= m);
    // Prime the window for coarse row j0.
    if j0 > 0 {
        mass_row_into(&mut lanes.left, sblk, inner, n, 2 * j0 - 1, h);
    }
    mass_row_into(&mut lanes.even, sblk, inner, n, 2 * j0, h);
    if j0 + 1 < m {
        mass_row_into(&mut lanes.right, sblk, inner, n, 2 * j0 + 1, h);
    }
    for j in j0..j1 {
        let drow = &mut dblk[(j - j0) * inner..(j - j0 + 1) * inner];
        if j == 0 {
            T::restrict_first(drow, &lanes.even, &lanes.right, wr[j]);
        } else if j + 1 == m {
            T::restrict_last(drow, &lanes.left, &lanes.even, wl[j]);
        } else {
            T::restrict_interior(drow, &lanes.left, &lanes.even, &lanes.right, wl[j], wr[j]);
        }
        if j + 1 < j1 {
            // Slide: fine row 2j+1 becomes the next row's left neighbour.
            std::mem::swap(&mut lanes.left, &mut lanes.right);
            mass_row_into(&mut lanes.even, sblk, inner, n, 2 * j + 2, h);
            if j + 2 < m {
                mass_row_into(&mut lanes.right, sblk, inner, n, 2 * j + 3, h);
            }
        }
    }
}

/// Fused `dst <- R (M src)` along `axis`: mass multiply and restriction
/// in one tile-resident pass, `src` untouched. Bitwise identical to
/// [`crate::mass::mass_apply_serial`] followed by
/// [`crate::transfer::transfer_apply_serial`].
///
/// Axis 0 tiles over `tile` coarse rows (the tiled layout's axis-0
/// parallelism); inner axes parallelize over the outer blocks, which are
/// already independent.
pub fn mass_restrict_fused<T: Real>(
    src: &[T],
    shape: Shape,
    dst: &mut [T],
    axis: Axis,
    coords: &[T],
    tile: usize,
    parallel: bool,
) {
    let n = shape.dim(axis);
    assert_eq!(src.len(), shape.len());
    assert_eq!(coords.len(), n);
    assert!(n >= 3 && n % 2 == 1, "restriction needs a decimating axis");
    let m = n.div_ceil(2);
    let inner: usize = (axis.0 + 1..shape.ndim())
        .map(|d| shape.dim(Axis(d)))
        .product();
    let outer = shape.len() / (n * inner);
    assert_eq!(dst.len(), outer * m * inner, "dst must have coarse extent");
    let tile = tile.max(1);

    let h: Vec<T> = coords.windows(2).map(|w| w[1] - w[0]).collect();
    let (wl, wr) = restriction_weights::<T>(coords);
    let (h, wl, wr) = (&h, &wl, &wr);

    if axis.0 == 0 {
        // One outer block; tile the coarse rows.
        let work = |k: usize, dchunk: &mut [T], lanes: &mut MassLanes<T>| {
            fused_block(src, dchunk, inner, n, m, k * tile, h, wl, wr, lanes);
        };
        if parallel {
            // Per-task lane windows (tasks cannot share scratch).
            dst.par_chunks_mut(tile * inner)
                .enumerate()
                .for_each(|(k, dchunk)| work(k, dchunk, &mut MassLanes::new(inner)));
        } else {
            let mut lanes = MassLanes::new(inner);
            for (k, dchunk) in dst.chunks_mut(tile * inner).enumerate() {
                work(k, dchunk, &mut lanes);
            }
        }
    } else {
        // Outer blocks are independent; each fuses its full coarse sweep.
        let blk = n * inner;
        let work = |k: usize, dchunk: &mut [T], lanes: &mut MassLanes<T>| {
            fused_block(
                &src[k * blk..][..blk],
                dchunk,
                inner,
                n,
                m,
                0,
                h,
                wl,
                wr,
                lanes,
            );
        };
        if parallel {
            dst.par_chunks_mut(m * inner)
                .enumerate()
                .for_each(|(k, dchunk)| work(k, dchunk, &mut MassLanes::new(inner)));
        } else {
            let mut lanes = MassLanes::new(inner);
            for (k, dchunk) in dst.chunks_mut(m * inner).enumerate() {
                work(k, dchunk, &mut lanes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mass, transfer};

    fn field(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| ((i * 53 + 29) % 97) as f64 * 0.031 - 1.5)
            .collect()
    }

    fn unfused(src: &[f64], shape: Shape, axis: Axis, coords: &[f64]) -> Vec<f64> {
        let mut massed = src.to_vec();
        mass::mass_apply_serial(&mut massed, shape, axis, coords);
        let m = shape.dim(axis).div_ceil(2);
        let coarse = shape.with_dim(axis, m);
        let mut out = vec![0.0f64; coarse.len()];
        transfer::transfer_apply_serial(&massed, shape, &mut out, axis, coords);
        out
    }

    #[test]
    fn fused_matches_unfused_axis0_every_tile() {
        let shape = Shape::d2(17, 7);
        let coords: Vec<f64> = (0..17)
            .map(|i| i as f64 * 0.4 + (i % 3) as f64 * 0.05)
            .collect();
        let src = field(shape.len());
        let expect = unfused(&src, shape, Axis(0), &coords);
        for tile in [1usize, 2, 3, 7, 64, 1000] {
            for parallel in [false, true] {
                let mut got = vec![0.0f64; expect.len()];
                mass_restrict_fused(&src, shape, &mut got, Axis(0), &coords, tile, parallel);
                assert_eq!(got, expect, "tile {tile} parallel {parallel}");
            }
        }
    }

    #[test]
    fn fused_matches_unfused_inner_axes_and_1d() {
        let shape = Shape::d3(5, 9, 5);
        let src = field(shape.len());
        for d in 0..3 {
            let n = shape.dim(Axis(d));
            let coords: Vec<f64> = (0..n)
                .map(|i| i as f64 * 0.3 + (i % 2) as f64 * 0.02)
                .collect();
            let expect = unfused(&src, shape, Axis(d), &coords);
            for parallel in [false, true] {
                let mut got = vec![0.0f64; expect.len()];
                mass_restrict_fused(&src, shape, &mut got, Axis(d), &coords, 4, parallel);
                assert_eq!(got, expect, "axis {d} parallel {parallel}");
            }
        }

        let shape = Shape::d1(129);
        let coords: Vec<f64> = (0..129).map(|i| i as f64 + (i % 5) as f64 * 0.1).collect();
        let src = field(129);
        let expect = unfused(&src, shape, Axis(0), &coords);
        for tile in [1usize, 16, 1000] {
            let mut got = vec![0.0f64; expect.len()];
            mass_restrict_fused(&src, shape, &mut got, Axis(0), &coords, tile, true);
            assert_eq!(got, expect, "1-d tile {tile}");
        }
    }
}
