//! Mass-matrix multiplication along one axis (linear-processing kernel).
//!
//! The 1-D piecewise-linear finite-element mass matrix on nodes
//! `x_0 < ... < x_{n-1}` with spacings `h_i = x_{i+1} - x_i` is the
//! symmetric tridiagonal matrix
//!
//! ```text
//! M[0,0]   = h_0/3          M[0,1]   = h_0/6
//! M[i,i-1] = h_{i-1}/6      M[i,i]   = (h_{i-1}+h_i)/3    M[i,i+1] = h_i/6
//! M[n-1,n-2] = h_{n-2}/6    M[n-1,n-1] = h_{n-2}/3
//! ```
//!
//! (the paper's Algorithm 2 uses the 6×-scaled coefficients `h1, 2*h3, h2`;
//! the scaling cancels against the correction solve, we keep the true
//! matrix). Entries are recomputed from the spacings on demand — the matrix
//! is never materialized.
//!
//! The serial variant walks each fiber in place with a one-element sliding
//! ghost (the original value of the previous node), which is exactly the
//! data dependence that forces the GPU design's ghost regions. The parallel
//! variant batches fibers plane-wise (paper §III-C) and writes out of place
//! so rayon can split the destination into disjoint chunks.

use mg_grid::fiber::{fiber_base, fiber_spec};
use mg_grid::{Axis, GridView, Real, Shape};
use rayon::prelude::*;

/// Tridiagonal row coefficients at row `i` for spacing vector `h`.
#[inline]
pub fn mass_row<T: Real>(h: &[T], i: usize) -> (T, T, T) {
    let n = h.len() + 1;
    let six = T::from_f64(6.0);
    let three = T::from_f64(3.0);
    if n == 1 {
        return (T::ZERO, T::ONE, T::ZERO);
    }
    if i == 0 {
        (T::ZERO, h[0] / three, h[0] / six)
    } else if i == n - 1 {
        (h[n - 2] / six, h[n - 2] / three, T::ZERO)
    } else {
        (h[i - 1] / six, (h[i - 1] + h[i]) / three, h[i] / six)
    }
}

/// Serial, in-place `v <- M v` along `axis`, for every fiber.
///
/// `coords` are the level coordinates along `axis` (length =
/// `shape.dim(axis)`). For the contiguous last axis each fiber is walked
/// with an O(1) sliding ghost; for outer axes the fibers are batched
/// plane-wise so the inner loop runs unit-stride over [`SpanOps`](mg_grid::span::SpanOps)
/// primitives (two row-sized ghost buffers of scratch). Both paths
/// perform the identical per-element arithmetic, so results are bitwise
/// independent of the axis stride.
pub fn mass_apply_serial<T: Real>(data: &mut [T], shape: Shape, axis: Axis, coords: &[T]) {
    let spec = fiber_spec(shape, axis);
    assert_eq!(data.len(), shape.len());
    assert_eq!(coords.len(), spec.len);
    let h: Vec<T> = coords.windows(2).map(|w| w[1] - w[0]).collect();
    let n = spec.len;
    if spec.stride > 1 {
        // Plane-batched: rows of `stride` interleaved fibers, walked in
        // place with row-sized ghosts holding the original values of
        // rows i-1 and i.
        let inner = spec.stride;
        let mut ghost = vec![T::ZERO; inner];
        let mut ghost_next = vec![T::ZERO; inner];
        for blk in data.chunks_mut(n * inner) {
            mass_block_inplace(blk, inner, n, &h, &mut ghost, &mut ghost_next);
        }
        return;
    }
    for f in 0..spec.count {
        let base = fiber_base(shape, axis, f);
        // Sliding ghost: original value of element i-1.
        let mut prev_orig = T::ZERO;
        for i in 0..n {
            let off = base + i * spec.stride;
            let cur_orig = data[off];
            let (a, b, c) = mass_row(&h, i);
            let mut t = b * cur_orig;
            if i > 0 {
                t += a * prev_orig;
            }
            if i + 1 < n {
                t += c * data[off + spec.stride];
            }
            data[off] = t;
            prev_orig = cur_orig;
        }
    }
}

/// In-place mass multiply of one contiguous `n x inner` block, row `i`
/// reading the original rows i-1 (from `ghost`) and i+1 (still
/// untouched), with boundary rows hoisted to two-term primitives.
fn mass_block_inplace<T: Real>(
    blk: &mut [T],
    inner: usize,
    n: usize,
    h: &[T],
    ghost: &mut Vec<T>,
    ghost_next: &mut Vec<T>,
) {
    for i in 0..n {
        let (a, b, c) = mass_row(h, i);
        let (head, tail) = blk.split_at_mut((i + 1) * inner);
        let cur = &mut head[i * inner..];
        ghost_next.copy_from_slice(cur);
        if n == 1 {
            T::mass_single(cur, ghost_next, b);
        } else if i == 0 {
            T::mass_first(cur, ghost_next, &tail[..inner], b, c);
        } else if i + 1 == n {
            T::mass_last(cur, ghost, ghost_next, a, b);
        } else {
            T::mass_interior(cur, ghost, ghost_next, &tail[..inner], a, b, c);
        }
        std::mem::swap(ghost, ghost_next);
    }
}

/// Parallel, out-of-place `dst <- M src` along `axis`.
///
/// Fibers are batched by outer block (`par_chunks_mut` over
/// `dim(axis) * stride(axis)`-sized slabs), so for non-contiguous axes the
/// inner loop runs unit-stride across the plane — the rayon analogue of the
/// paper's x-y / x-z plane batching.
pub fn mass_apply_parallel<T: Real>(
    src: &[T],
    dst: &mut [T],
    shape: Shape,
    axis: Axis,
    coords: &[T],
) {
    let spec = fiber_spec(shape, axis);
    assert_eq!(src.len(), shape.len());
    assert_eq!(dst.len(), shape.len());
    assert_eq!(coords.len(), spec.len);
    let h: Vec<T> = coords.windows(2).map(|w| w[1] - w[0]).collect();
    let n = spec.len;
    let inner = spec.stride;
    let block = n * inner;
    dst.par_chunks_mut(block)
        .zip(src.par_chunks(block))
        .for_each(|(dblk, sblk)| mass_block_out(dblk, sblk, inner, n, &h));
}

/// Out-of-place mass multiply of one contiguous `n x inner` block, with
/// boundary rows hoisted to two-term [`SpanOps`](mg_grid::span::SpanOps) primitives so the row
/// loops are branch-free and stride-1.
pub(crate) fn mass_block_out<T: Real>(dblk: &mut [T], sblk: &[T], inner: usize, n: usize, h: &[T]) {
    for i in 0..n {
        let (a, b, c) = mass_row(h, i);
        let row = i * inner;
        let dst = &mut dblk[row..row + inner];
        let cur = &sblk[row..row + inner];
        if n == 1 {
            T::mass_single(dst, cur, b);
        } else if i == 0 {
            T::mass_first(dst, cur, &sblk[row + inner..row + 2 * inner], b, c);
        } else if i + 1 == n {
            T::mass_last(dst, &sblk[row - inner..row], cur, a, b);
        } else {
            T::mass_interior(
                dst,
                &sblk[row - inner..row],
                cur,
                &sblk[row + inner..row + 2 * inner],
                a,
                b,
                c,
            );
        }
    }
}

/// Stride-aware, in-place `v <- M v` along `axis` for every fiber of a
/// [`GridView`] — runs unchanged on dense-packed or embedded-strided
/// level subgrids (the Fig. 7 strided baseline is
/// `GridView::embedded` fed here). Same sliding-ghost walk as
/// [`mass_apply_serial`], so results are bitwise identical.
pub fn mass_apply_view_serial<T: Real>(data: &mut [T], view: &GridView, axis: Axis, coords: &[T]) {
    let n = view.shape().dim(axis);
    assert_eq!(data.len(), view.backing_len());
    assert_eq!(coords.len(), n);
    let h: Vec<T> = coords.windows(2).map(|w| w[1] - w[0]).collect();
    let stride = view.stride(axis);
    view.for_each_fiber_base(axis, |_, base| {
        let mut prev_orig = T::ZERO;
        for i in 0..n {
            let off = base + i * stride;
            let cur_orig = data[off];
            let (a, b, c) = mass_row(&h, i);
            let mut t = b * cur_orig;
            if i > 0 {
                t += a * prev_orig;
            }
            if i + 1 < n {
                t += c * data[off + stride];
            }
            data[off] = t;
            prev_orig = cur_orig;
        }
    });
}

/// Dense reference multiply used only by tests: materializes `M` and does a
/// full matrix–vector product per fiber.
#[cfg(test)]
pub fn mass_apply_dense<T: Real>(v: &[T], coords: &[T]) -> Vec<T> {
    let n = v.len();
    let h: Vec<T> = coords.windows(2).map(|w| w[1] - w[0]).collect();
    (0..n)
        .map(|i| {
            let (a, b, c) = mass_row(&h, i);
            let mut t = b * v[i];
            if i > 0 {
                t += a * v[i - 1];
            }
            if i + 1 < n {
                t += c * v[i + 1];
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_vector_times_mass_integrates_hats() {
        // M * 1 = row sums = integral of each hat basis function.
        let coords = vec![0.0f64, 1.0, 3.0, 4.0];
        let mut v = vec![1.0f64; 4];
        mass_apply_serial(&mut v, Shape::d1(4), Axis(0), &coords);
        // Row sums: h0/3+h0/6 = h0/2; h0/2 + h1/2; h1/2 + h2/2; h2/2.
        let expect = [0.5, 0.5 + 1.0, 1.0 + 0.5, 0.5];
        for (a, b) in v.iter().zip(expect) {
            assert!((a - b).abs() < 1e-14, "{v:?}");
        }
        // Total = integral of 1 over [0,4] = 4.
        assert!((v.iter().sum::<f64>() - 4.0).abs() < 1e-14);
    }

    #[test]
    fn serial_matches_dense_1d() {
        let coords = vec![0.0f64, 0.3, 0.5, 0.9, 1.0];
        let v: Vec<f64> = (0..5).map(|i| (i as f64).sin() + 2.0).collect();
        let expect = mass_apply_dense(&v, &coords);
        let mut got = v.clone();
        mass_apply_serial(&mut got, Shape::d1(5), Axis(0), &coords);
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn serial_and_parallel_agree_all_axes_3d() {
        let shape = Shape::d3(5, 4, 6);
        let src: Vec<f64> = (0..shape.len())
            .map(|i| ((i * 31) % 13) as f64 * 0.21)
            .collect();
        for ax in 0..3 {
            let n = shape.dim(Axis(ax));
            let coords: Vec<f64> = (0..n)
                .map(|i| i as f64 * 0.5 + (i as f64).powi(2) * 0.01)
                .collect();
            let mut ser = src.clone();
            mass_apply_serial(&mut ser, shape, Axis(ax), &coords);
            let mut par = vec![0.0f64; src.len()];
            mass_apply_parallel(&src, &mut par, shape, Axis(ax), &coords);
            for (a, b) in ser.iter().zip(&par) {
                assert!((a - b).abs() < 1e-13, "axis {ax}");
            }
        }
    }

    #[test]
    fn fiber_independence_2d() {
        // Each row along axis 1 is transformed independently: transforming a
        // stacked array equals transforming rows one at a time.
        let coords = vec![0.0f64, 1.0, 2.5];
        let rows = [[1.0f64, 2.0, 3.0], [-1.0, 0.5, 4.0]];
        let mut stacked: Vec<f64> = rows.iter().flatten().copied().collect();
        mass_apply_serial(&mut stacked, Shape::d2(2, 3), Axis(1), &coords);
        for (r, row) in rows.iter().enumerate() {
            let mut single = row.to_vec();
            mass_apply_serial(&mut single, Shape::d1(3), Axis(0), &coords);
            assert_eq!(&stacked[r * 3..r * 3 + 3], single.as_slice());
        }
    }

    #[test]
    fn two_node_fiber() {
        // n = 2 (bottomed-out level): M = [[h/3, h/6], [h/6, h/3]].
        let coords = vec![0.0f64, 3.0];
        let mut v = vec![1.0f64, 2.0];
        mass_apply_serial(&mut v, Shape::d1(2), Axis(0), &coords);
        assert!((v[0] - (1.0 + 2.0 * 0.5)).abs() < 1e-14); // 1*1 + 0.5*2
        assert!((v[1] - (0.5 + 2.0)).abs() < 1e-14);
    }

    #[test]
    fn view_kernel_matches_packed_on_embedded_levels() {
        // The stride-aware entry on an embedded level view must equal
        // pack -> packed kernel -> unpack, bit for bit, on every level
        // and axis.
        use mg_grid::pack::{pack_level, unpack_level};
        use mg_grid::{GridView, Hierarchy};
        let full = Shape::d2(9, 17);
        let hier = Hierarchy::new(full).unwrap();
        let src: Vec<f64> = (0..full.len())
            .map(|i| ((i * 31 + 7) % 53) as f64 * 0.11 - 2.0)
            .collect();
        for l in 1..=hier.nlevels() {
            let ld = hier.level_dims(l);
            let view = GridView::embedded(full, &ld);
            for ax in 0..2 {
                let n = ld.shape.dim(Axis(ax));
                let coords: Vec<f64> = (0..n).map(|i| i as f64 * 0.4 + 0.1).collect();

                let mut expect = src.clone();
                let mut packed = Vec::new();
                pack_level(&expect, full, &ld, &mut packed);
                mass_apply_serial(&mut packed, ld.shape, Axis(ax), &coords);
                unpack_level(&mut expect, full, &ld, &packed);

                let mut got = src.clone();
                mass_apply_view_serial(&mut got, &view, Axis(ax), &coords);
                assert_eq!(got, expect, "level {l} axis {ax}");
            }
        }
    }

    #[test]
    fn mass_is_symmetric() {
        // <Mu, v> == <u, Mv> for random-ish u, v.
        let coords = vec![0.0f64, 0.2, 0.7, 1.3, 2.0];
        let u: Vec<f64> = vec![1.0, -2.0, 3.0, 0.5, 1.5];
        let v: Vec<f64> = vec![0.3, 1.1, -0.7, 2.2, -1.0];
        let mu = mass_apply_dense(&u, &coords);
        let mv = mass_apply_dense(&v, &coords);
        let lhs: f64 = mu.iter().zip(&v).map(|(a, b)| a * b).sum();
        let rhs: f64 = u.iter().zip(&mv).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }
}
