//! Correction solver: tridiagonal (Thomas) solve with the coarse mass
//! matrix along one axis (linear-processing kernel).
//!
//! The factorization depends only on the coarse coordinates, not on the
//! right-hand side, so it is computed once per axis and shared by all
//! fibers. The stored forward-eliminated superdiagonal is the `O(2^l + 1)`
//! per-dimension extra memory the paper attributes to this kernel
//! (§III-B): "the elements in updated main diagonal cannot be efficiently
//! computed during the backward substitution process".

use crate::mass::mass_row;
use mg_grid::fiber::{fiber_base, fiber_spec};
use mg_grid::{Axis, GridView, Real, Shape};
use rayon::prelude::*;

/// Precomputed Thomas factorization of a 1-D mass matrix.
#[derive(Clone, Debug)]
pub struct ThomasFactors<T> {
    /// Forward-eliminated superdiagonal `c'_i`.
    cprime: Vec<T>,
    /// `1 / (b_i - a_i c'_{i-1})`.
    inv_denom: Vec<T>,
    /// Subdiagonal `a_i`.
    sub: Vec<T>,
    n: usize,
}

impl<T: Real> ThomasFactors<T> {
    /// Factorize the mass matrix of the grid with the given coordinates.
    pub fn new(coords: &[T]) -> Self {
        let n = coords.len();
        assert!(n >= 1);
        let h: Vec<T> = coords.windows(2).map(|w| w[1] - w[0]).collect();
        let mut cprime = vec![T::ZERO; n];
        let mut inv_denom = vec![T::ZERO; n];
        let mut sub = vec![T::ZERO; n];
        let mut prev_cp = T::ZERO;
        for i in 0..n {
            let (a, b, c) = mass_row(&h, i);
            let denom = b - a * prev_cp;
            debug_assert!(denom.to_f64() != 0.0, "mass matrix must be nonsingular");
            let inv = denom.recip();
            cprime[i] = c * inv;
            inv_denom[i] = inv;
            sub[i] = a;
            prev_cp = cprime[i];
        }
        ThomasFactors {
            cprime,
            inv_denom,
            sub,
            n,
        }
    }

    #[inline]
    /// System size (nodes along the solved axis).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solve `M x = d` for one contiguous fiber in place.
    #[inline]
    pub fn solve_slice(&self, d: &mut [T]) {
        debug_assert_eq!(d.len(), self.n);
        let n = self.n;
        d[0] *= self.inv_denom[0];
        for i in 1..n {
            d[i] = (d[i] - self.sub[i] * d[i - 1]) * self.inv_denom[i];
        }
        for i in (0..n - 1).rev() {
            d[i] -= self.cprime[i] * d[i + 1];
        }
    }

    /// Extra scratch the factorization stores per axis (elements), reported
    /// to the footprint accounting (mirrors the paper's `O(2^l+1)` note).
    pub fn scratch_len(&self) -> usize {
        3 * self.n
    }
}

/// Serial, in-place solve of `M x = d` for every fiber along `axis`.
///
/// `coords` are the *coarse* level coordinates along `axis` (the array must
/// already have the coarse extent along `axis`).
pub fn solve_serial<T: Real>(data: &mut [T], shape: Shape, axis: Axis, factors: &ThomasFactors<T>) {
    let spec = fiber_spec(shape, axis);
    assert_eq!(data.len(), shape.len());
    assert_eq!(factors.n(), spec.len);
    let n = spec.len;
    if spec.stride > 1 {
        // Plane-batched: the sweeps run row-sequentially (the Thomas
        // recurrence) but stride-1 across the interleaved fibers of each
        // outer block, through the same span primitives as the parallel
        // variant — identical per-element arithmetic either way.
        for blk in data.chunks_mut(n * spec.stride) {
            solve_block(blk, spec.stride, factors);
        }
        return;
    }
    for f in 0..spec.count {
        let base = fiber_base(shape, axis, f);
        // Forward sweep.
        data[base] *= factors.inv_denom[0];
        for i in 1..n {
            let off = base + i * spec.stride;
            let prev = data[off - spec.stride];
            data[off] = (data[off] - factors.sub[i] * prev) * factors.inv_denom[i];
        }
        // Back substitution.
        for i in (0..n - 1).rev() {
            let off = base + i * spec.stride;
            let next = data[off + spec.stride];
            data[off] -= factors.cprime[i] * next;
        }
    }
}

/// Stride-aware, in-place solve of `M x = d` for every fiber of a
/// [`GridView`] (dense-packed or embedded-strided); same sweeps as
/// [`solve_serial`].
pub fn solve_view_serial<T: Real>(
    data: &mut [T],
    view: &GridView,
    axis: Axis,
    factors: &ThomasFactors<T>,
) {
    let n = view.shape().dim(axis);
    assert_eq!(data.len(), view.backing_len());
    assert_eq!(factors.n(), n);
    let stride = view.stride(axis);
    view.for_each_fiber_base(axis, |_, base| {
        data[base] *= factors.inv_denom[0];
        for i in 1..n {
            let off = base + i * stride;
            let prev = data[off - stride];
            data[off] = (data[off] - factors.sub[i] * prev) * factors.inv_denom[i];
        }
        for i in (0..n - 1).rev() {
            let off = base + i * stride;
            let next = data[off + stride];
            data[off] -= factors.cprime[i] * next;
        }
    });
}

/// Parallel, in-place solve along `axis`.
///
/// Outer blocks (slabs of `dim(axis) * stride(axis)` elements) are
/// independent and processed in parallel; within a block the sweeps run
/// row-sequentially but vectorize across the `stride(axis)` interleaved
/// fibers — the same fiber batching the paper's linear framework uses to
/// keep global accesses coalesced while honouring the solve's sequential
/// dependence.
pub fn solve_parallel<T: Real>(
    data: &mut [T],
    shape: Shape,
    axis: Axis,
    factors: &ThomasFactors<T>,
) {
    let spec = fiber_spec(shape, axis);
    assert_eq!(data.len(), shape.len());
    assert_eq!(factors.n(), spec.len);
    let n = spec.len;
    let inner = spec.stride;
    data.par_chunks_mut(n * inner)
        .for_each(|blk| solve_block(blk, inner, factors));
}

/// Thomas solve of one contiguous `n x inner` block: forward sweep and
/// back substitution one row (plane of fibers) at a time, stride-1
/// through [`SpanOps`](mg_grid::span::SpanOps) primitives.
fn solve_block<T: Real>(blk: &mut [T], inner: usize, factors: &ThomasFactors<T>) {
    let n = factors.n();
    // Forward sweep.
    T::scale(&mut blk[..inner], factors.inv_denom[0]);
    for i in 1..n {
        let (prev_rows, cur) = blk.split_at_mut(i * inner);
        T::fwd_elim(
            &mut cur[..inner],
            &prev_rows[(i - 1) * inner..],
            factors.sub[i],
            factors.inv_denom[i],
        );
    }
    // Back substitution.
    for i in (0..n - 1).rev() {
        let (head, tail) = blk.split_at_mut((i + 1) * inner);
        T::back_subst(&mut head[i * inner..], &tail[..inner], factors.cprime[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mass::mass_apply_serial;

    #[test]
    fn solve_then_mass_is_identity_1d() {
        let coords = vec![0.0f64, 0.3, 0.5, 0.9, 1.4, 2.0];
        let f = ThomasFactors::new(&coords);
        let rhs: Vec<f64> = vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.25];
        let mut x = rhs.clone();
        f.solve_slice(&mut x);
        // M x should reproduce rhs.
        let mut mx = x.clone();
        mass_apply_serial(&mut mx, Shape::d1(6), Axis(0), &coords);
        for (a, b) in mx.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-12, "{mx:?} vs {rhs:?}");
        }
    }

    #[test]
    fn two_node_solve() {
        let coords = vec![0.0f64, 1.0];
        let f = ThomasFactors::new(&coords);
        let mut d = vec![0.5f64, 0.5];
        f.solve_slice(&mut d);
        // M = [[1/3,1/6],[1/6,1/3]]; M x = (0.5, 0.5) => x = (1, 1).
        assert!((d[0] - 1.0).abs() < 1e-13);
        assert!((d[1] - 1.0).abs() < 1e-13);
    }

    #[test]
    fn serial_strided_matches_slice_solver() {
        let coords = vec![0.0f64, 0.5, 1.25, 2.0, 2.5];
        let f = ThomasFactors::new(&coords);
        // axis 0 of a 5x3 array: three interleaved fibers.
        let shape = Shape::d2(5, 3);
        let src: Vec<f64> = (0..15).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let mut strided = src.clone();
        solve_serial(&mut strided, shape, Axis(0), &f);
        for c in 0..3 {
            let mut fiber: Vec<f64> = (0..5).map(|r| src[r * 3 + c]).collect();
            f.solve_slice(&mut fiber);
            for r in 0..5 {
                assert!((strided[r * 3 + c] - fiber[r]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn serial_and_parallel_agree_all_axes_3d() {
        let shape = Shape::d3(5, 3, 9);
        let src: Vec<f64> = (0..shape.len())
            .map(|i| ((i * 29) % 17) as f64 * 0.31 - 2.0)
            .collect();
        for ax in 0..3 {
            let n = shape.dim(Axis(ax));
            let coords: Vec<f64> = (0..n).map(|i| i as f64 * (1.0 + 0.1 * i as f64)).collect();
            let f = ThomasFactors::new(&coords);
            let mut ser = src.clone();
            solve_serial(&mut ser, shape, Axis(ax), &f);
            let mut par = src.clone();
            solve_parallel(&mut par, shape, Axis(ax), &f);
            for (a, b) in ser.iter().zip(&par) {
                assert!((a - b).abs() < 1e-12, "axis {ax}");
            }
        }
    }

    #[test]
    fn view_kernel_matches_packed_on_embedded_levels() {
        use mg_grid::pack::{pack_level, unpack_level};
        use mg_grid::{GridView, Hierarchy};
        let full = Shape::d2(9, 17);
        let hier = Hierarchy::new(full).unwrap();
        let src: Vec<f64> = (0..full.len())
            .map(|i| ((i * 19 + 5) % 37) as f64 * 0.23 - 2.0)
            .collect();
        for l in 1..=hier.nlevels() {
            let ld = hier.level_dims(l);
            let view = GridView::embedded(full, &ld);
            for ax in 0..2 {
                let n = ld.shape.dim(Axis(ax));
                let coords: Vec<f64> = (0..n).map(|i| i as f64 * (1.0 + 0.2 * i as f64)).collect();
                let f = ThomasFactors::new(&coords);

                let mut expect = src.clone();
                let mut packed = Vec::new();
                pack_level(&expect, full, &ld, &mut packed);
                solve_serial(&mut packed, ld.shape, Axis(ax), &f);
                unpack_level(&mut expect, full, &ld, &packed);

                let mut got = src.clone();
                solve_view_serial(&mut got, &view, Axis(ax), &f);
                assert_eq!(got, expect, "level {l} axis {ax}");
            }
        }
    }

    #[test]
    fn residual_small_for_large_system() {
        let n = 257;
        let coords: Vec<f64> = (0..n).map(|i| i as f64 + (i % 3) as f64 * 0.2).collect();
        let f = ThomasFactors::new(&coords);
        let rhs: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let mut x = rhs.clone();
        f.solve_slice(&mut x);
        let mut mx = x.clone();
        mass_apply_serial(&mut mx, Shape::d1(n), Axis(0), &coords);
        let err = mg_grid::real::max_abs_diff(&mx, &rhs);
        assert!(err < 1e-10, "residual {err}");
    }

    #[test]
    fn scratch_len_is_linear_in_n() {
        let coords: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let f = ThomasFactors::new(&coords);
        assert_eq!(f.scratch_len(), 27);
    }
}
