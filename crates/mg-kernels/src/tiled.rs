//! Cache-blocked tiled kernels with halo exchange at tile boundaries.
//!
//! The tiled layout ([`crate::Layout::Tiled`]) processes the data in
//! blocks of `tile` outermost-dimension rows. Each tile's working set is a
//! contiguous slab sized to stay L2-resident, and tiles are independent —
//! they parallelize across the rayon workers — because every value a tile
//! needs from its neighbours is captured in *halo planes* before the
//! in-place pass starts. The halo is the CPU rendering of the GPU
//! six-region design's ghost regions (paper Figs. 5 & 6): the tridiagonal
//! stencils of the coefficient and mass kernels read original neighbour
//! values that in-place stores would otherwise destroy, and at a tile
//! boundary the destroyer is another thread rather than the same fiber
//! walk.
//!
//! Three kernels need tiling beyond what the segmented in-place module
//! already provides (its outer blocks parallelize every axis except the
//! outermost, where there is a single block):
//!
//! * [`compute_coeffs_tiled`] / [`restore_coeffs_tiled`] — the
//!   grid-processing kernels, tiled directly over the finest array through
//!   a [`GridView`] (no packing).
//! * [`mass_apply_tiled_axis0`] — axis-0 mass multiply with one halo row
//!   pair per tile boundary.
//! * [`transfer_apply_tiled_axis0`] — axis-0 restriction, out of place so
//!   the coarse-row tiles are trivially independent.
//!
//! Every entry point performs arithmetic in exactly the order of the
//! serial reference kernels, so tiled results are bitwise identical to the
//! packed layout for any tile size (including `tile = 1` and
//! `tile > extent`).

use crate::coeff::{axis_interp_view, odd_dims_of, AxisInterp};
use crate::level::LevelCtx;
use crate::mass::mass_row;
use crate::transfer::restriction_weights;
use mg_grid::{Axis, GridView, Real, Shape, MAX_DIMS};
use rayon::prelude::*;

/// Default tile size (outermost-dimension rows per tile).
///
/// With `f64` data, a tile of a `513^2` grid is ~128 KiB and a tile of a
/// `129^3` grid is ~4 MiB of fine rows — the sweet spot depends on the
/// row footprint; see the README's tile-size guidance and
/// `bench_refactor --tile-sweep`.
pub const DEFAULT_TILE: usize = 32;

/// Update direction (mirrors the private mode switch of `coeff`).
#[derive(Copy, Clone, PartialEq, Eq)]
enum Dir {
    Subtract,
    Add,
}

/// Span, in backing elements, of one dim-0 row of the view (distance from
/// a row's first to one past its last touched element).
fn row_span(view: &GridView) -> usize {
    let shape = view.shape();
    1 + (1..shape.ndim())
        .map(|d| (shape.dim(Axis(d)) - 1) * view.stride(Axis(d)))
        .sum::<usize>()
}

/// Gather the halo planes for a dim-0 tiling of `view` over `data`: for
/// every tile boundary `b = k * tile < n0`, the original rows `b - 1` and
/// `b` (each `span` elements starting at `row * stride0`), stored
/// consecutively per boundary.
fn gather_halos<T: Real>(
    data: &[T],
    stride0: usize,
    span: usize,
    n0: usize,
    tile: usize,
    halo: &mut Vec<T>,
) {
    let nb = (n0 - 1) / tile; // boundaries strictly inside [0, n0)
    halo.clear();
    halo.resize(nb * 2 * span, T::ZERO);
    for j in 1..=nb {
        let b = j * tile;
        let at = (j - 1) * 2 * span;
        halo[at..at + span].copy_from_slice(&data[(b - 1) * stride0..(b - 1) * stride0 + span]);
        halo[at + span..at + 2 * span].copy_from_slice(&data[b * stride0..b * stride0 + span]);
    }
}

/// Dim-0 tiling geometry of one tile: level rows `[a, b)`, backed by a
/// chunk starting at element `chunk_base`.
#[derive(Copy, Clone)]
struct TileGeo {
    a: usize,
    b: usize,
    stride0: usize,
    span: usize,
    tile: usize,
    chunk_base: usize,
}

/// Read a corner value at backing offset `off`. Corner reads land on
/// all-even (never-written) nodes: inside the tile they are original
/// values in `chunk`; the rows `a - 1` and `b` live in the halo snapshot.
#[inline]
fn read_corner<T: Real>(chunk: &[T], halo: &[T], g: &TileGeo, off: usize) -> T {
    let c0 = off / g.stride0;
    if (g.a..g.b).contains(&c0) {
        chunk[off - g.chunk_base]
    } else if c0 + 1 == g.a {
        halo[(g.a / g.tile - 1) * 2 * g.span + (off - c0 * g.stride0)]
    } else {
        debug_assert_eq!(c0, g.b);
        halo[(g.b / g.tile - 1) * 2 * g.span + g.span + (off - c0 * g.stride0)]
    }
}

/// The interpolant at `idx`, corners via [`read_corner`] — the mask/weight
/// order of `coeff::interp_at`, verbatim, so sums are bitwise identical.
#[inline]
fn interp_halo<T: Real>(
    chunk: &[T],
    halo: &[T],
    g: &TileGeo,
    axes: &[AxisInterp<T>],
    idx: &[usize],
    odd_dims: &[usize],
    base: usize,
) -> T {
    let k = odd_dims.len();
    let mut acc = T::ZERO;
    for mask in 0u32..(1u32 << k) {
        let mut w = T::ONE;
        let mut off = base as isize;
        for (bit, &d) in odd_dims.iter().enumerate() {
            let ax = &axes[d];
            if mask & (1 << bit) != 0 {
                w *= ax.wr[idx[d]];
                off += ax.stride as isize;
            } else {
                w *= ax.wl[idx[d]];
                off -= ax.stride as isize;
            }
        }
        acc += w * read_corner(chunk, halo, g, off as usize);
    }
    acc
}

/// Process the coefficient update of one tile.
#[allow(clippy::too_many_arguments)]
fn coeff_tile<T: Real>(
    chunk: &mut [T],
    a: usize,
    b: usize,
    shape: Shape,
    axes: &[AxisInterp<T>],
    stride0: usize,
    span: usize,
    tile: usize,
    halo: &[T],
    dir: Dir,
) {
    let nd = shape.ndim();
    let chunk_base = a * stride0;
    let geo = TileGeo {
        a,
        b,
        stride0,
        span,
        tile,
        chunk_base,
    };

    let mut idx = [0usize; MAX_DIMS];
    let mut odd = [0usize; MAX_DIMS];
    if nd == 1 {
        // Dim 0 is the fiber itself: odd nodes of [a, b).
        for i in a..b {
            if !(axes[0].decimates && i % 2 == 1) {
                continue;
            }
            idx[0] = i;
            odd[0] = 0;
            let off = i * stride0;
            let v = interp_halo(chunk, halo, &geo, axes, &idx[..1], &odd[..1], off);
            match dir {
                Dir::Subtract => chunk[off - chunk_base] -= v,
                Dir::Add => chunk[off - chunk_base] += v,
            }
        }
        return;
    }

    let row_len = shape.dim(Axis(nd - 1));
    let last_stride = axes[nd - 1].stride;
    let mid_rows: usize = (1..nd - 1).map(|d| shape.dim(Axis(d))).product();
    let last = &axes[nd - 1];
    for i0 in a..b {
        idx[0] = i0;
        for r in 0..mid_rows {
            let mut rem = r;
            for d in (1..nd - 1).rev() {
                idx[d] = rem % shape.dim(Axis(d));
                rem /= shape.dim(Axis(d));
            }
            let row_base: usize =
                i0 * stride0 + (1..nd - 1).map(|d| idx[d] * axes[d].stride).sum::<usize>();
            let np = odd_dims_of(&idx[..nd - 1], axes, &mut odd);
            for j in 0..row_len {
                idx[nd - 1] = j;
                let j_odd = last.decimates && j % 2 == 1;
                if np == 0 && !j_odd {
                    continue;
                }
                let mut k = np;
                if j_odd {
                    odd[k] = nd - 1;
                    k += 1;
                }
                let off = row_base + j * last_stride;
                let v = interp_halo(chunk, halo, &geo, axes, &idx[..nd], &odd[..k], off);
                match dir {
                    Dir::Subtract => chunk[off - chunk_base] -= v,
                    Dir::Add => chunk[off - chunk_base] += v,
                }
            }
        }
    }
}

fn run_coeffs_tiled<T: Real>(
    data: &mut [T],
    view: &GridView,
    ctx: &LevelCtx<T>,
    tile: usize,
    parallel: bool,
    dir: Dir,
    halo: &mut Vec<T>,
) {
    let shape = ctx.shape();
    assert_eq!(shape, view.shape(), "view must cover the level extents");
    assert_eq!(data.len(), view.backing_len());
    let tile = tile.max(1);
    let n0 = shape.dim(Axis(0));
    let stride0 = view.stride(Axis(0));
    let span = row_span(view);
    debug_assert!(span <= stride0 || n0 == 1);
    let axes = axis_interp_view(ctx, view);
    gather_halos(data, stride0, span, n0, tile, halo);

    let chunk_elems = tile * stride0;
    let axes = &axes;
    let halo: &[T] = halo;
    let work = |k: usize, chunk: &mut [T]| {
        let a = k * tile;
        if a >= n0 {
            return; // trailing fine rows past the last level row
        }
        let b = ((k + 1) * tile).min(n0);
        coeff_tile(chunk, a, b, shape, axes, stride0, span, tile, halo, dir);
    };
    if parallel {
        data.par_chunks_mut(chunk_elems)
            .enumerate()
            .for_each(|(k, chunk)| work(k, chunk));
    } else {
        for (k, chunk) in data.chunks_mut(chunk_elems).enumerate() {
            work(k, chunk);
        }
    }
}

/// Tiled, in-place coefficient computation on a stride-aware view —
/// the tiled layout's grid-processing kernel. Bitwise identical to
/// [`crate::coeff::compute_view_serial`] for every tile size. `halo` is
/// caller scratch for the boundary planes.
pub fn compute_coeffs_tiled<T: Real>(
    data: &mut [T],
    view: &GridView,
    ctx: &LevelCtx<T>,
    tile: usize,
    parallel: bool,
    halo: &mut Vec<T>,
) {
    run_coeffs_tiled(data, view, ctx, tile, parallel, Dir::Subtract, halo);
}

/// Tiled, in-place restoration on a view; exact inverse of
/// [`compute_coeffs_tiled`].
pub fn restore_coeffs_tiled<T: Real>(
    data: &mut [T],
    view: &GridView,
    ctx: &LevelCtx<T>,
    tile: usize,
    parallel: bool,
    halo: &mut Vec<T>,
) {
    run_coeffs_tiled(data, view, ctx, tile, parallel, Dir::Add, halo);
}

/// In-place `v <- M v` along axis 0 in tiles of `tile` rows.
///
/// The segmented in-place kernel parallelizes over outer blocks, of which
/// axis 0 has exactly one — this kernel recovers axis-0 parallelism by
/// saving one pair of halo rows per tile boundary (the originals of rows
/// `b - 1` and `b`) and letting each tile run the sliding-ghost walk of
/// [`crate::mass::mass_apply_serial`] independently. Bitwise identical to
/// the serial kernel. `halo` is caller scratch.
pub fn mass_apply_tiled_axis0<T: Real>(
    data: &mut [T],
    shape: Shape,
    coords: &[T],
    tile: usize,
    parallel: bool,
    halo: &mut Vec<T>,
) {
    let n = shape.dim(Axis(0));
    assert_eq!(data.len(), shape.len());
    assert_eq!(coords.len(), n);
    let tile = tile.max(1);
    let inner = shape.len() / n;
    let h: Vec<T> = coords.windows(2).map(|w| w[1] - w[0]).collect();
    gather_halos(data, inner, inner, n, tile, halo);

    let h = &h;
    let halo: &[T] = halo;
    // Sliding ghost lanes: originals of row i-1 (and of row i while it is
    // being overwritten).
    let work = |k: usize, chunk: &mut [T], prev: &mut Vec<T>, cur: &mut Vec<T>| {
        let a = k * tile;
        let b = ((k + 1) * tile).min(n);
        prev.clear();
        prev.resize(inner, T::ZERO);
        cur.clear();
        cur.resize(inner, T::ZERO);
        if a > 0 {
            prev.copy_from_slice(&halo[(a / tile - 1) * 2 * inner..][..inner]);
        }
        for i in a..b {
            let row = (i - a) * inner;
            cur.copy_from_slice(&chunk[row..row + inner]);
            let (ca, cb, cc) = mass_row(h, i);
            for kk in 0..inner {
                let mut t = cb * cur[kk];
                if i > 0 {
                    t += ca * prev[kk];
                }
                if i + 1 < n {
                    let right = if i + 1 == b {
                        halo[(b / tile - 1) * 2 * inner + inner + kk]
                    } else {
                        chunk[row + inner + kk]
                    };
                    t += cc * right;
                }
                chunk[row + kk] = t;
            }
            std::mem::swap(prev, cur);
        }
    };
    if parallel {
        // One ghost-lane pair per rayon task (the same per-task staging
        // the segmented kernels use — tasks cannot share scratch).
        data.par_chunks_mut(tile * inner)
            .enumerate()
            .for_each(|(k, chunk)| {
                let (mut prev, mut cur) = (Vec::new(), Vec::new());
                work(k, chunk, &mut prev, &mut cur);
            });
    } else {
        // Serial walk reuses one pair across all tiles.
        let (mut prev, mut cur) = (Vec::new(), Vec::new());
        for (k, chunk) in data.chunks_mut(tile * inner).enumerate() {
            work(k, chunk, &mut prev, &mut cur);
        }
    }
}

/// Out-of-place `dst <- R src` along axis 0 in tiles of `tile` coarse
/// rows. `src` is immutable, so tiles need no halo at all; each coarse-row
/// tile reads the fine rows `2j - 1 ..= 2j + 1` it depends on. Bitwise
/// identical to [`crate::transfer::transfer_apply_serial`].
pub fn transfer_apply_tiled_axis0<T: Real>(
    src: &[T],
    src_shape: Shape,
    dst: &mut [T],
    coords: &[T],
    tile: usize,
    parallel: bool,
) {
    let n = src_shape.dim(Axis(0));
    assert_eq!(src.len(), src_shape.len());
    assert_eq!(coords.len(), n);
    assert!(n >= 3 && n % 2 == 1, "transfer needs a decimating axis");
    let m = n.div_ceil(2);
    let inner = src_shape.len() / n;
    assert_eq!(dst.len(), m * inner, "dst must have coarse extent");
    let tile = tile.max(1);
    let (wl, wr) = restriction_weights::<T>(coords);
    let (wl, wr) = (&wl, &wr);

    let work = |k: usize, dchunk: &mut [T]| {
        let j0 = k * tile;
        let j1 = (j0 + tile).min(m);
        for j in j0..j1 {
            let drow = (j - j0) * inner;
            let srow = 2 * j * inner;
            for kk in 0..inner {
                let mut t = src[srow + kk];
                if j > 0 {
                    t += wl[j] * src[srow - inner + kk];
                }
                if j + 1 < m {
                    t += wr[j] * src[srow + inner + kk];
                }
                dchunk[drow + kk] = t;
            }
        }
    };
    if parallel {
        dst.par_chunks_mut(tile * inner)
            .enumerate()
            .for_each(|(k, chunk)| work(k, chunk));
    } else {
        for (k, chunk) in dst.chunks_mut(tile * inner).enumerate() {
            work(k, chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{coeff, mass, transfer};
    use mg_grid::{CoordSet, Hierarchy};

    const TILES: [usize; 6] = [1, 2, 3, 7, 64, 1000];

    fn ctx_for(shape: Shape, coords: &CoordSet<f64>, l: usize) -> LevelCtx<f64> {
        let h = Hierarchy::new(shape).unwrap();
        let ld = h.level_dims(l);
        let cs = (0..shape.ndim())
            .map(|d| coords.level_coords(&h, l, Axis(d)))
            .collect();
        LevelCtx::new(ld.shape, cs)
    }

    fn field(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| ((i * 37 + 11) % 101) as f64 * 0.04 - 2.0)
            .collect()
    }

    #[test]
    fn tiled_coeffs_match_view_serial_every_level_and_tile() {
        let full = Shape::d2(17, 9);
        let coords = CoordSet::<f64>::stretched(full, 0.25);
        let hier = Hierarchy::new(full).unwrap();
        let src = field(full.len());
        for l in 1..=hier.nlevels() {
            let ld = hier.level_dims(l);
            let view = GridView::embedded(full, &ld);
            let ctx = ctx_for(full, &coords, l);
            let mut expect = src.clone();
            coeff::compute_view_serial(&mut expect, &view, &ctx);
            for tile in TILES {
                for parallel in [false, true] {
                    let mut got = src.clone();
                    let mut halo = Vec::new();
                    compute_coeffs_tiled(&mut got, &view, &ctx, tile, parallel, &mut halo);
                    assert_eq!(got, expect, "level {l} tile {tile} parallel {parallel}");
                    restore_coeffs_tiled(&mut got, &view, &ctx, tile, parallel, &mut halo);
                    let mut rt = src.clone();
                    coeff::compute_view_serial(&mut rt, &view, &ctx);
                    coeff::restore_view_serial(&mut rt, &view, &ctx);
                    assert_eq!(got, rt, "restore level {l} tile {tile}");
                }
            }
        }
    }

    #[test]
    fn tiled_coeffs_match_in_1d_and_3d() {
        for full in [Shape::d1(33), Shape::d3(5, 9, 5)] {
            let coords = CoordSet::<f64>::stretched(full, 0.2);
            let hier = Hierarchy::new(full).unwrap();
            let src = field(full.len());
            for l in 1..=hier.nlevels() {
                let view = GridView::embedded(full, &hier.level_dims(l));
                let ctx = ctx_for(full, &coords, l);
                let mut expect = src.clone();
                coeff::compute_view_serial(&mut expect, &view, &ctx);
                for tile in [1usize, 3, 8, 100] {
                    let mut got = src.clone();
                    let mut halo = Vec::new();
                    compute_coeffs_tiled(&mut got, &view, &ctx, tile, true, &mut halo);
                    assert_eq!(got, expect, "{full:?} level {l} tile {tile}");
                }
            }
        }
    }

    #[test]
    fn tiled_mass_axis0_matches_serial() {
        let shape = Shape::d2(17, 7);
        let coords: Vec<f64> = (0..17)
            .map(|i| i as f64 * 0.4 + (i % 3) as f64 * 0.05)
            .collect();
        let src = field(shape.len());
        let mut expect = src.clone();
        mass::mass_apply_serial(&mut expect, shape, Axis(0), &coords);
        for tile in TILES {
            for parallel in [false, true] {
                let mut got = src.clone();
                let mut halo = Vec::new();
                mass_apply_tiled_axis0(&mut got, shape, &coords, tile, parallel, &mut halo);
                assert_eq!(got, expect, "tile {tile} parallel {parallel}");
            }
        }
    }

    #[test]
    fn tiled_transfer_axis0_matches_serial() {
        let shape = Shape::d2(17, 5);
        let coords: Vec<f64> = (0..17).map(|i| i as f64 * 0.3 + 0.1).collect();
        let src = field(shape.len());
        let mut expect = vec![0.0f64; 9 * 5];
        transfer::transfer_apply_serial(&src, shape, &mut expect, Axis(0), &coords);
        for tile in TILES {
            for parallel in [false, true] {
                let mut got = vec![0.0f64; 9 * 5];
                transfer_apply_tiled_axis0(&src, shape, &mut got, &coords, tile, parallel);
                assert_eq!(got, expect, "tile {tile} parallel {parallel}");
            }
        }
    }

    #[test]
    fn one_dimensional_mass_tiles() {
        let shape = Shape::d1(129);
        let coords: Vec<f64> = (0..129).map(|i| i as f64 + (i % 5) as f64 * 0.1).collect();
        let src = field(129);
        let mut expect = src.clone();
        mass::mass_apply_serial(&mut expect, shape, Axis(0), &coords);
        let mut got = src.clone();
        let mut halo = Vec::new();
        mass_apply_tiled_axis0(&mut got, shape, &coords, 16, true, &mut halo);
        assert_eq!(got, expect);
    }
}
