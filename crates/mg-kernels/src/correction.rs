//! The global-correction pipeline: `z = M_{l-1}^{-1} R_l M_l vec(C_l)`,
//! computed dimension by dimension using the tensor-product factorization
//! (paper §II.2 and Algorithm 3, lines 6–11).
//!
//! For every decimating axis `d`, in order: mass-matrix multiply with the
//! fine (level-`l`) spacings, transfer-matrix multiply (fine → coarse
//! extent), Thomas solve with the coarse (level-`l-1`) mass matrix.
//! Bottomed-out axes contribute an identity factor and are skipped.
//!
//! Two layouts drive the pipeline ([`crate::ExecPlan`]): the packed plan
//! ping-pongs between two scratch buffers (out-of-place parallel-friendly
//! kernels), while the in-place plan runs the paper's six-region segmented
//! update ([`crate::inplace`]) in a single buffer — mass and transfer
//! update in place, the coarse results are compacted forward, and the
//! Thomas solve already works in place.

use crate::level::LevelCtx;
use crate::solve::ThomasFactors;
use crate::{fused, inplace, mass, solve, transfer, ExecPlan, Layout, Threading};
use mg_grid::{Axis, Real, Shape};
use std::cell::Cell;

thread_local! {
    static SCRATCH_ALLOCS: Cell<usize> = const { Cell::new(0) };
}

/// Number of times the correction pipeline had to grow a scratch buffer
/// *on this thread* — the allocation analogue of
/// `mg_grid::pack::pack_call_count`. After a warm-up pass the pipeline
/// reuses its [`CorrectionScratch`] capacity, so steady-state decompose /
/// recompose loops must leave this counter unchanged (enforced by a
/// driver test).
pub fn scratch_alloc_count() -> usize {
    SCRATCH_ALLOCS.with(Cell::get)
}

/// Grow `v` to at least `len` valid elements, counting real (re)allocations.
fn grow<T: Real>(v: &mut Vec<T>, len: usize) {
    if v.capacity() < len {
        SCRATCH_ALLOCS.with(|c| c.set(c.get() + 1));
    }
    if v.len() < len {
        v.resize(len, T::ZERO);
    }
}

/// Wall-clock time spent in each linear-processing stage, accumulated
/// across calls (drives the Table IV breakdown harness).
#[derive(Copy, Clone, Debug, Default)]
pub struct StageTimes {
    /// Time in mass-matrix multiplication.
    pub mass: std::time::Duration,
    /// Time in transfer-matrix multiplication.
    pub transfer: std::time::Duration,
    /// Time in the correction solver.
    pub solve: std::time::Duration,
}

impl StageTimes {
    /// Sum of the three stages.
    pub fn total(&self) -> std::time::Duration {
        self.mass + self.transfer + self.solve
    }
}

/// Reusable buffers for the correction pipeline (ping-pong working space).
///
/// Capacity is retained across calls, so per-level allocations disappear
/// after the first decomposition pass.
#[derive(Default)]
pub struct CorrectionScratch<T> {
    a: Vec<T>,
    b: Vec<T>,
    /// Halo planes for the tiled axis-0 kernels.
    halo: Vec<T>,
    /// Accumulated per-stage wall-clock times; reset with [`Self::take_times`].
    pub times: StageTimes,
}

impl<T: Real> CorrectionScratch<T> {
    /// Fresh scratch (buffers allocate lazily on first use).
    pub fn new() -> Self {
        CorrectionScratch {
            a: Vec::new(),
            b: Vec::new(),
            halo: Vec::new(),
            times: StageTimes::default(),
        }
    }

    /// Return and reset the accumulated stage times.
    pub fn take_times(&mut self) -> StageTimes {
        std::mem::take(&mut self.times)
    }

    /// Elements of scratch capacity currently held (ping-pong buffers +
    /// halo planes), for driver footprint accounting.
    pub fn capacity_elems(&self) -> usize {
        self.a.capacity() + self.b.capacity() + self.halo.capacity()
    }

    /// The staging buffer the pipeline starts from: drivers that already
    /// hold the coefficient array elsewhere fill this directly and call
    /// [`compute_correction_staged`], skipping the input copy of
    /// [`compute_correction`].
    pub fn stage(&mut self) -> &mut Vec<T> {
        &mut self.a
    }
}

/// Compute the global correction for one level.
///
/// `coeffs` is the packed level-`l` array holding coefficients at the
/// `N_l \ N_{l-1}` nodes and **zeros** at the coarse nodes (see
/// [`crate::coeff::zero_coarse`]). Returns the correction on the coarse grid
/// (shape [`LevelCtx::coarse_shape`]), borrowed from the scratch buffers —
/// no per-call allocation once the scratch capacity is warm.
pub fn compute_correction<'a, T: Real>(
    coeffs: &[T],
    ctx: &LevelCtx<T>,
    plan: ExecPlan,
    scratch: &'a mut CorrectionScratch<T>,
) -> (&'a [T], Shape) {
    assert_eq!(coeffs.len(), ctx.shape().len());
    scratch.a.clear();
    scratch.a.extend_from_slice(coeffs);
    compute_correction_staged(ctx, plan, scratch)
}

/// [`compute_correction`] for a coefficient array already staged in
/// [`CorrectionScratch::stage`] (the in-place driver gathers `C_l` there
/// directly, avoiding one level-sized copy).
///
/// [`Layout::Strided`] has no dense staged pipeline — its driver keeps the
/// correction embedded in the finest index space (`mg-core`); a direct
/// call falls back to the arithmetic-equivalent packed pipeline.
pub fn compute_correction_staged<'a, T: Real>(
    ctx: &LevelCtx<T>,
    plan: ExecPlan,
    scratch: &'a mut CorrectionScratch<T>,
) -> (&'a [T], Shape) {
    assert!(scratch.a.len() >= ctx.shape().len(), "stage C_l first");
    match plan.layout {
        Layout::Packed | Layout::Strided => correction_packed(ctx, plan.threading, scratch),
        Layout::InPlace => correction_inplace(ctx, plan.threading, scratch),
        Layout::Tiled { tile } => correction_tiled(ctx, plan.threading, tile, scratch),
    }
}

/// Packed-layout pipeline: ping-pong between the two scratch buffers.
fn correction_packed<'a, T: Real>(
    ctx: &LevelCtx<T>,
    threading: Threading,
    scratch: &'a mut CorrectionScratch<T>,
) -> (&'a [T], Shape) {
    let mut shape = ctx.shape();
    scratch.b.clear();
    grow(&mut scratch.b, shape.len());

    // `cur` flag selects which scratch buffer currently holds the data.
    let mut cur_is_a = true;
    let mut times = StageTimes::default();

    for d in 0..ctx.ndim() {
        let axis = Axis(d);
        if !ctx.decimates(axis) {
            continue; // identity factor
        }
        let fine_coords = ctx.coords(axis);
        let coarse_coords = ctx.coarse_coords(axis);
        let coarse_shape = shape.with_dim(axis, shape.dim(axis).div_ceil(2));

        let (cur, other) = if cur_is_a {
            (&mut scratch.a, &mut scratch.b)
        } else {
            (&mut scratch.b, &mut scratch.a)
        };

        match threading {
            Threading::Serial => {
                let t0 = std::time::Instant::now();
                mass::mass_apply_serial(&mut cur[..shape.len()], shape, axis, fine_coords);
                let t1 = std::time::Instant::now();
                times.mass += t1 - t0;
                grow(other, coarse_shape.len());
                transfer::transfer_apply_serial(
                    &cur[..shape.len()],
                    shape,
                    &mut other[..coarse_shape.len()],
                    axis,
                    fine_coords,
                );
                let t2 = std::time::Instant::now();
                times.transfer += t2 - t1;
                let factors = ThomasFactors::new(&coarse_coords);
                solve::solve_serial(
                    &mut other[..coarse_shape.len()],
                    coarse_shape,
                    axis,
                    &factors,
                );
                times.solve += t2.elapsed();
            }
            Threading::Parallel => {
                let t0 = std::time::Instant::now();
                grow(other, shape.len());
                mass::mass_apply_parallel(
                    &cur[..shape.len()],
                    &mut other[..shape.len()],
                    shape,
                    axis,
                    fine_coords,
                );
                let t1 = std::time::Instant::now();
                times.mass += t1 - t0;
                // other now holds M v at fine extent; transfer back into cur.
                grow(cur, coarse_shape.len());
                transfer::transfer_apply_parallel(
                    &other[..shape.len()],
                    shape,
                    &mut cur[..coarse_shape.len()],
                    axis,
                    fine_coords,
                );
                let t2 = std::time::Instant::now();
                times.transfer += t2 - t1;
                let factors = ThomasFactors::new(&coarse_coords);
                solve::solve_parallel(&mut cur[..coarse_shape.len()], coarse_shape, axis, &factors);
                times.solve += t2.elapsed();
            }
        }
        // Where did the result land?
        cur_is_a = match threading {
            Threading::Serial => !cur_is_a,  // landed in `other`
            Threading::Parallel => cur_is_a, // landed back in `cur`
        };
        shape = coarse_shape;
    }
    scratch.times.mass += times.mass;
    scratch.times.transfer += times.transfer;
    scratch.times.solve += times.solve;

    let src = if cur_is_a { &scratch.a } else { &scratch.b };
    (&src[..shape.len()], shape)
}

/// Tiled-layout pipeline: per decimating axis, the mass multiply and the
/// restriction run as ONE fused tile-resident pass
/// ([`fused::mass_restrict_fused`]) that reads `cur` read-only and writes
/// coarse rows straight into the other scratch buffer — each tile stays
/// cache-resident across both kernels and the intermediate mass array is
/// never materialized. Axis 0 tiles over `tile` coarse rows (recovering
/// cross-tile parallelism on the axis that dominates large grids); inner
/// axes parallelize over their independent outer blocks. The Thomas solve
/// stays a separate sweep (its recurrence is global along the axis).
/// Arithmetic matches the packed pipeline operation for operation, so the
/// layouts stay bitwise identical.
fn correction_tiled<'a, T: Real>(
    ctx: &LevelCtx<T>,
    threading: Threading,
    tile: usize,
    scratch: &'a mut CorrectionScratch<T>,
) -> (&'a [T], Shape) {
    let mut shape = ctx.shape();
    let par = threading == Threading::Parallel;
    let mut cur_is_a = true;
    let mut times = StageTimes::default();

    for d in 0..ctx.ndim() {
        let axis = Axis(d);
        if !ctx.decimates(axis) {
            continue; // identity factor
        }
        let fine_coords = ctx.coords(axis);
        let coarse_coords = ctx.coarse_coords(axis);
        let coarse_shape = shape.with_dim(axis, shape.dim(axis).div_ceil(2));

        let (cur, other) = if cur_is_a {
            (&mut scratch.a, &mut scratch.b)
        } else {
            (&mut scratch.b, &mut scratch.a)
        };

        // Fused mass + restriction: `cur` stays read-only (it is dead
        // after this axis), coarse rows land directly in `other`. The
        // fused time is reported under the mass stage; the transfer
        // stage it absorbs costs ~nothing extra per tile.
        let t0 = std::time::Instant::now();
        grow(other, coarse_shape.len());
        fused::mass_restrict_fused(
            &cur[..shape.len()],
            shape,
            &mut other[..coarse_shape.len()],
            axis,
            fine_coords,
            tile,
            par,
        );
        let t2 = std::time::Instant::now();
        times.mass += t2 - t0;

        // Solve in `other`.
        let factors = ThomasFactors::new(&coarse_coords);
        if par {
            solve::solve_parallel(
                &mut other[..coarse_shape.len()],
                coarse_shape,
                axis,
                &factors,
            );
        } else {
            solve::solve_serial(
                &mut other[..coarse_shape.len()],
                coarse_shape,
                axis,
                &factors,
            );
        }
        times.solve += t2.elapsed();

        cur_is_a = !cur_is_a;
        shape = coarse_shape;
    }
    scratch.times.mass += times.mass;
    scratch.times.transfer += times.transfer;
    scratch.times.solve += times.solve;

    let src = if cur_is_a { &scratch.a } else { &scratch.b };
    (&src[..shape.len()], shape)
}

/// In-place-layout pipeline: the six-region segmented update runs every
/// stage in the single staging buffer (`scratch.b` is never touched).
/// Arithmetic matches the packed pipeline operation for operation, so the
/// two layouts produce bitwise-identical corrections.
fn correction_inplace<'a, T: Real>(
    ctx: &LevelCtx<T>,
    threading: Threading,
    scratch: &'a mut CorrectionScratch<T>,
) -> (&'a [T], Shape) {
    let mut shape = ctx.shape();
    let buf = &mut scratch.a;
    let mut times = StageTimes::default();

    for d in 0..ctx.ndim() {
        let axis = Axis(d);
        if !ctx.decimates(axis) {
            continue; // identity factor
        }
        let fine_coords = ctx.coords(axis);
        let coarse_coords = ctx.coarse_coords(axis);

        let t0 = std::time::Instant::now();
        let seg = inplace::DEFAULT_SEGMENT;
        match threading {
            Threading::Serial => {
                inplace::mass_apply_inplace_segmented(
                    &mut buf[..shape.len()],
                    shape,
                    axis,
                    fine_coords,
                    seg,
                );
            }
            Threading::Parallel => {
                inplace::mass_apply_inplace_segmented_parallel(
                    &mut buf[..shape.len()],
                    shape,
                    axis,
                    fine_coords,
                    seg,
                );
            }
        }
        let t1 = std::time::Instant::now();
        times.mass += t1 - t0;

        match threading {
            Threading::Serial => {
                inplace::transfer_apply_inplace(&mut buf[..shape.len()], shape, axis, fine_coords);
            }
            Threading::Parallel => {
                inplace::transfer_apply_inplace_parallel(
                    &mut buf[..shape.len()],
                    shape,
                    axis,
                    fine_coords,
                );
            }
        }
        let coarse_shape = inplace::compact_coarse(&mut buf[..shape.len()], shape, axis);
        let t2 = std::time::Instant::now();
        times.transfer += t2 - t1;

        let factors = ThomasFactors::new(&coarse_coords);
        match threading {
            Threading::Serial => {
                solve::solve_serial(&mut buf[..coarse_shape.len()], coarse_shape, axis, &factors);
            }
            Threading::Parallel => {
                solve::solve_parallel(&mut buf[..coarse_shape.len()], coarse_shape, axis, &factors);
            }
        }
        times.solve += t2.elapsed();
        shape = coarse_shape;
    }
    scratch.times.mass += times.mass;
    scratch.times.transfer += times.transfer;
    scratch.times.solve += times.solve;

    (&scratch.a[..shape.len()], shape)
}

/// Apply the full per-axis mass multiply (all decimating axes, fine
/// spacings) — test/diagnostic helper implementing `vec(M_l C)`.
pub fn mass_all_axes<T: Real>(data: &mut [T], ctx: &LevelCtx<T>) -> Shape {
    let shape = ctx.shape();
    assert_eq!(data.len(), shape.len());
    for d in 0..ctx.ndim() {
        let axis = Axis(d);
        if ctx.decimates(axis) {
            mass::mass_apply_serial(data, shape, axis, ctx.coords(axis));
        }
    }
    shape
}

/// Apply restriction along all decimating axes — test/diagnostic helper
/// implementing `R_l v` on an already mass-weighted vector.
pub fn restrict_all_axes<T: Real>(data: &[T], ctx: &LevelCtx<T>) -> (Vec<T>, Shape) {
    let mut shape = ctx.shape();
    let mut cur = data.to_vec();
    for d in 0..ctx.ndim() {
        let axis = Axis(d);
        if !ctx.decimates(axis) {
            continue;
        }
        let coarse_shape = shape.with_dim(axis, shape.dim(axis).div_ceil(2));
        let mut out = vec![T::ZERO; coarse_shape.len()];
        transfer::transfer_apply_serial(&cur, shape, &mut out, axis, ctx.coords(axis));
        cur = out;
        shape = coarse_shape;
    }
    (cur, shape)
}

/// Multi-linear prolongation of a coarse array to the fine level grid —
/// test/diagnostic helper (`P v`, the transpose of `restrict_all_axes`'s
/// operator).
pub fn prolong_all_axes<T: Real>(coarse: &[T], ctx: &LevelCtx<T>) -> Vec<T> {
    // Start from the coarse array and expand axis by axis, finest-last so
    // shapes stay consistent.
    let fine_shape = ctx.shape();
    let mut shape_dims: Vec<usize> = (0..ctx.ndim())
        .map(|d| {
            let n = fine_shape.dim(Axis(d));
            if n >= 3 {
                n.div_ceil(2)
            } else {
                n
            }
        })
        .collect();
    let mut cur = coarse.to_vec();
    for d in 0..ctx.ndim() {
        let axis = Axis(d);
        if !ctx.decimates(axis) {
            continue;
        }
        let src_shape = Shape::new(&shape_dims);
        shape_dims[d] = fine_shape.dim(axis);
        let dst_shape = Shape::new(&shape_dims);
        let mut out = vec![T::ZERO; dst_shape.len()];
        let fine_coords = ctx.coords(axis);
        // expand each fiber along `axis`
        let sspec = mg_grid::fiber::fiber_spec(src_shape, axis);
        let dspec = mg_grid::fiber::fiber_spec(dst_shape, axis);
        for f in 0..sspec.count {
            let sbase = mg_grid::fiber::fiber_base(src_shape, axis, f);
            let dbase = mg_grid::fiber::fiber_base(dst_shape, axis, f);
            let fiber: Vec<T> = (0..sspec.len)
                .map(|k| cur[sbase + k * sspec.stride])
                .collect();
            let expanded = transfer::prolong_1d(&fiber, fine_coords);
            for (k, &v) in expanded.iter().enumerate() {
                out[dbase + k * dspec.stride] = v;
            }
        }
        cur = out;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeff;
    use mg_grid::real::max_abs_diff;
    use mg_grid::{CoordSet, Hierarchy};

    fn ctx_for(shape: Shape, strength: f64) -> LevelCtx<f64> {
        let h = Hierarchy::new(shape).unwrap();
        let coords = CoordSet::<f64>::stretched(shape, strength);
        let l = h.nlevels();
        let cs = (0..shape.ndim())
            .map(|d| coords.level_coords(&h, l, Axis(d)))
            .collect();
        LevelCtx::new(h.level_dims(l).shape, cs)
    }

    fn test_field(shape: Shape) -> Vec<f64> {
        (0..shape.len())
            .map(|i| ((i * 37 + 11) % 101) as f64 * 0.02 - 1.0)
            .collect()
    }

    /// Build the coefficient array (zeros at coarse) from a data field.
    fn coeff_array(data: &[f64], ctx: &LevelCtx<f64>) -> Vec<f64> {
        let mut c = data.to_vec();
        coeff::compute_serial(&mut c, ctx);
        coeff::zero_coarse(&mut c, ctx);
        c
    }

    #[test]
    fn correction_satisfies_normal_equations_2d() {
        // M_{l-1} z == R M_l c, verified by re-applying the coarse mass.
        let shape = Shape::d2(9, 5);
        let ctx = ctx_for(shape, 0.25);
        let data = test_field(shape);
        let c = coeff_array(&data, &ctx);

        let mut scratch = CorrectionScratch::new();
        let (z, zshape) = compute_correction(&c, &ctx, ExecPlan::serial(), &mut scratch);
        let z = z.to_vec();
        assert_eq!(zshape.as_slice(), &[5, 3]);

        // rhs = R (M c)
        let mut mc = c.clone();
        mass_all_axes(&mut mc, &ctx);
        let (rhs, rshape) = restrict_all_axes(&mc, &ctx);
        assert_eq!(rshape, zshape);

        // lhs = M_{l-1} z
        let coarse_coords: Vec<Vec<f64>> = (0..2).map(|d| ctx.coarse_coords(Axis(d))).collect();
        let coarse_ctx = LevelCtx::new(zshape, coarse_coords);
        let mut lhs = z.clone();
        mass_all_axes(&mut lhs, &coarse_ctx);

        assert!(max_abs_diff(&lhs, &rhs) < 1e-12);
    }

    #[test]
    fn corrected_coarse_is_l2_orthogonal_projection_1d() {
        // After decomposition, (Q_l u - Q_{l-1} u) must be L2-orthogonal to
        // the coarse space: R M_l (u - P u_coarse) == 0.
        let shape = Shape::d1(17);
        let ctx = ctx_for(shape, 0.3);
        let data = test_field(shape);
        let c = coeff_array(&data, &ctx);
        let mut scratch = CorrectionScratch::new();
        let (z, _) = compute_correction(&c, &ctx, ExecPlan::serial(), &mut scratch);

        // coarse nodal values after decomposition = subsample + correction
        let coarse: Vec<f64> = (0..9).map(|j| data[2 * j] + z[j]).collect();
        let pu = prolong_all_axes(&coarse, &ctx);
        let mut diff: Vec<f64> = data.iter().zip(&pu).map(|(a, b)| a - b).collect();
        mass_all_axes(&mut diff, &ctx);
        let (orth, _) = restrict_all_axes(&diff, &ctx);
        assert!(mg_grid::real::max_abs(&orth) < 1e-12, "{orth:?}");
    }

    #[test]
    fn orthogonality_holds_in_2d_nonuniform() {
        let shape = Shape::d2(9, 9);
        let ctx = ctx_for(shape, 0.3);
        let data = test_field(shape);
        let c = coeff_array(&data, &ctx);
        let mut scratch = CorrectionScratch::new();
        let (z, zshape) = compute_correction(&c, &ctx, ExecPlan::serial(), &mut scratch);

        let mut coarse = vec![0.0f64; zshape.len()];
        for (zi, idx) in zshape.indices().enumerate() {
            let fine_off = (idx[0] * 2) * 9 + idx[1] * 2;
            coarse[zi] = data[fine_off] + z[zi];
        }
        let pu = prolong_all_axes(&coarse, &ctx);
        let mut diff: Vec<f64> = data.iter().zip(&pu).map(|(a, b)| a - b).collect();
        mass_all_axes(&mut diff, &ctx);
        let (orth, _) = restrict_all_axes(&diff, &ctx);
        assert!(mg_grid::real::max_abs(&orth) < 1e-11, "{orth:?}");
    }

    #[test]
    fn linear_field_produces_zero_correction_3d() {
        let shape = Shape::d3(5, 5, 5);
        let ctx = ctx_for(shape, 0.2);
        // Trilinear field sampled at level coordinates.
        let xs: Vec<Vec<f64>> = (0..3).map(|d| ctx.coords(Axis(d)).to_vec()).collect();
        let mut data = Vec::new();
        for &x in &xs[0] {
            for &y in &xs[1] {
                for &z in &xs[2] {
                    data.push(1.0 + 2.0 * x - 0.5 * y + 3.0 * z);
                }
            }
        }
        let c = coeff_array(&data, &ctx);
        assert!(mg_grid::real::max_abs(&c) < 1e-12, "coefficients nonzero");
        let mut scratch = CorrectionScratch::new();
        let (z, _) = compute_correction(&c, &ctx, ExecPlan::serial(), &mut scratch);
        assert!(mg_grid::real::max_abs(z) < 1e-12);
    }

    #[test]
    fn serial_and_parallel_corrections_agree_3d() {
        let shape = Shape::d3(9, 5, 9);
        let ctx = ctx_for(shape, 0.25);
        let data = test_field(shape);
        let c = coeff_array(&data, &ctx);
        let mut s1 = CorrectionScratch::new();
        let mut s2 = CorrectionScratch::new();
        let (z_ser, sh1) = compute_correction(&c, &ctx, ExecPlan::serial(), &mut s1);
        let (z_par, sh2) = compute_correction(&c, &ctx, ExecPlan::parallel(), &mut s2);
        assert_eq!(sh1, sh2);
        assert!(max_abs_diff(z_ser, z_par) < 1e-12);
    }

    #[test]
    fn tiled_correction_matches_packed_bitwise() {
        let shape = Shape::d3(9, 17, 5);
        let ctx = ctx_for(shape, 0.25);
        let data = test_field(shape);
        let c = coeff_array(&data, &ctx);
        let mut sp = CorrectionScratch::new();
        let (zp, shp) = compute_correction(&c, &ctx, ExecPlan::serial(), &mut sp);
        let zp = zp.to_vec();
        for tile in [1usize, 2, 3, 8, 64, 1000] {
            for threading in [Threading::Serial, Threading::Parallel] {
                let plan = ExecPlan::new(threading, Layout::Tiled { tile });
                let mut st = CorrectionScratch::new();
                let (zt, sht) = compute_correction(&c, &ctx, plan, &mut st);
                assert_eq!(shp, sht);
                assert_eq!(zt, &zp[..], "tile {tile} {threading:?}");
            }
        }
    }

    #[test]
    fn scratch_reuse_performs_no_steady_state_allocations() {
        let shape = Shape::d2(17, 17);
        let ctx = ctx_for(shape, 0.2);
        let data = test_field(shape);
        let c = coeff_array(&data, &ctx);
        for layout in [Layout::Packed, Layout::InPlace, Layout::tiled()] {
            let plan = ExecPlan::new(Threading::Serial, layout);
            let mut scratch = CorrectionScratch::new();
            // Warm-up sizes the buffers.
            let _ = compute_correction(&c, &ctx, plan, &mut scratch);
            let before = scratch_alloc_count();
            for _ in 0..3 {
                let _ = compute_correction(&c, &ctx, plan, &mut scratch);
            }
            assert_eq!(
                scratch_alloc_count(),
                before,
                "{layout:?} grew scratch in steady state"
            );
        }
    }

    #[test]
    fn bottomed_out_axis_is_identity_factor() {
        // 2 x 9: corrections along axis 1 only; axis 0 passes through.
        let ctx = LevelCtx::new(
            Shape::d2(2, 9),
            vec![vec![0.0f64, 1.0], (0..9).map(|i| i as f64 / 8.0).collect()],
        );
        let data: Vec<f64> = (0..18).map(|i| ((i * 7) % 5) as f64).collect();
        let c = coeff_array(&data, &ctx);
        let mut scratch = CorrectionScratch::new();
        let (z, zshape) = compute_correction(&c, &ctx, ExecPlan::serial(), &mut scratch);
        assert_eq!(zshape.as_slice(), &[2, 5]);

        // Row-wise 1D corrections must match.
        for r in 0..2 {
            let row_ctx =
                LevelCtx::new(Shape::d1(9), vec![(0..9).map(|i| i as f64 / 8.0).collect()]);
            let row_c = c[r * 9..(r + 1) * 9].to_vec();
            let mut s = CorrectionScratch::new();
            let (zr, _) = compute_correction(&row_c, &row_ctx, ExecPlan::serial(), &mut s);
            for j in 0..5 {
                assert!((z[r * 5 + j] - zr[j]).abs() < 1e-13);
            }
        }
    }
}
