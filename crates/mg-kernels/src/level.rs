//! Per-level kernel context: packed shape, level coordinates, and the
//! interpolation weights derived from them.

use mg_grid::{Axis, Real, Shape, MAX_DIMS};

/// Everything a kernel needs to know about one level of the hierarchy.
///
/// `coords[d]` holds the coordinates of the *level* nodes along dimension
/// `d` (length = packed extent). A dimension *decimates* at this level if it
/// still has at least 3 nodes; bottomed-out dimensions (2 nodes) pass
/// through every kernel untouched.
#[derive(Clone, Debug)]
pub struct LevelCtx<T> {
    shape: Shape,
    coords: Vec<Vec<T>>,
}

impl<T: Real> LevelCtx<T> {
    /// Build a context; validates that coordinate lengths match the shape.
    pub fn new(shape: Shape, coords: Vec<Vec<T>>) -> Self {
        assert_eq!(coords.len(), shape.ndim(), "one coord vector per dim");
        for (d, c) in coords.iter().enumerate() {
            assert_eq!(c.len(), shape.dim(Axis(d)), "coords len mismatch dim {d}");
        }
        LevelCtx { shape, coords }
    }

    #[inline]
    /// Packed extents of this level.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    #[inline]
    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Level coordinates along `axis`.
    #[inline]
    pub fn coords(&self, axis: Axis) -> &[T] {
        &self.coords[axis.0]
    }

    /// Whether `axis` still decimates at this level (>= 3 nodes).
    #[inline]
    pub fn decimates(&self, axis: Axis) -> bool {
        self.shape.dim(axis) >= 3
    }

    /// Shape of the next-coarser grid: every decimating extent `n` becomes
    /// `(n + 1) / 2`; bottomed-out extents stay.
    pub fn coarse_shape(&self) -> Shape {
        let mut dims = [0usize; MAX_DIMS];
        for d in 0..self.ndim() {
            let n = self.shape.dim(Axis(d));
            dims[d] = if n >= 3 { n.div_ceil(2) } else { n };
        }
        Shape::new(&dims[..self.ndim()])
    }

    /// Coarse coordinates along `axis` (every other node if decimating).
    pub fn coarse_coords(&self, axis: Axis) -> Vec<T> {
        if self.decimates(axis) {
            self.coords[axis.0].iter().copied().step_by(2).collect()
        } else {
            self.coords[axis.0].clone()
        }
    }

    /// Interpolation weights for the odd nodes along `axis`.
    ///
    /// For odd node `i` (between even nodes `i-1`, `i+1`):
    /// `wl[i] = (x[i+1] - x[i]) / (x[i+1] - x[i-1])` (weight of the left
    /// neighbour) and `wr[i] = 1 - wl[i]`. Entries at even indices are 0.
    pub fn interp_weights(&self, axis: Axis) -> (Vec<T>, Vec<T>) {
        let x = self.coords(axis);
        let n = x.len();
        let mut wl = vec![T::ZERO; n];
        let mut wr = vec![T::ZERO; n];
        if n >= 3 {
            let mut i = 1;
            while i < n - 1 {
                let span = x[i + 1] - x[i - 1];
                wl[i] = (x[i + 1] - x[i]) / span;
                wr[i] = (x[i] - x[i - 1]) / span;
                i += 2;
            }
        }
        (wl, wr)
    }

    /// Spacing `h_i = x[i+1] - x[i]` along `axis` (length `n - 1`).
    pub fn spacings(&self, axis: Axis) -> Vec<T> {
        self.coords(axis).windows(2).map(|w| w[1] - w[0]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_1d(xs: &[f64]) -> LevelCtx<f64> {
        LevelCtx::new(Shape::d1(xs.len()), vec![xs.to_vec()])
    }

    #[test]
    fn uniform_weights_are_half() {
        let c = ctx_1d(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        let (wl, wr) = c.interp_weights(Axis(0));
        assert_eq!(wl[1], 0.5);
        assert_eq!(wr[3], 0.5);
        assert_eq!(wl[0], 0.0); // even entries unused
        assert_eq!(wl[2], 0.0);
    }

    #[test]
    fn nonuniform_weights_sum_to_one() {
        let c = ctx_1d(&[0.0, 0.1, 0.5, 0.8, 1.0]);
        let (wl, wr) = c.interp_weights(Axis(0));
        for i in (1..4).step_by(2) {
            assert!((wl[i] + wr[i] - 1.0).abs() < 1e-15);
        }
        // node 1 at x=0.1 between 0.0 and 0.5: closer to left => left weight
        // larger: wl = (0.5-0.1)/0.5 = 0.8.
        assert!((wl[1] - 0.8).abs() < 1e-15);
    }

    #[test]
    fn coarse_shape_halves_decimating_dims() {
        let c = LevelCtx::new(
            Shape::d2(5, 2),
            vec![vec![0.0f64, 0.25, 0.5, 0.75, 1.0], vec![0.0, 1.0]],
        );
        assert_eq!(c.coarse_shape().as_slice(), &[3, 2]);
        assert!(c.decimates(Axis(0)));
        assert!(!c.decimates(Axis(1)));
        assert_eq!(c.coarse_coords(Axis(0)), vec![0.0, 0.5, 1.0]);
        assert_eq!(c.coarse_coords(Axis(1)), vec![0.0, 1.0]);
    }

    #[test]
    fn spacings() {
        let c = ctx_1d(&[0.0, 0.5, 2.0]);
        assert_eq!(c.spacings(Axis(0)), vec![0.5, 1.5]);
    }
}
