//! The five computational kernels of multigrid-based hierarchical data
//! refactoring (paper §III-A), in serial-reference and rayon-parallel form.
//!
//! | Paper kernel | Type | Module |
//! |---|---|---|
//! | compute coefficients | grid processing | [`coeff::compute_serial`] / [`coeff::compute_parallel`] |
//! | restore from coefficients | grid processing | [`coeff::restore_serial`] / [`coeff::restore_parallel`] |
//! | mass matrix multiplication | linear processing | [`mass`] |
//! | transfer matrix multiplication | linear processing | [`transfer`] |
//! | correction solver | linear processing | [`solve`] |
//!
//! All kernels operate on *packed* level-`l` arrays: the driver in `mg-core`
//! gathers the level subgrid densely (see `mg_grid::pack`), so extents here
//! are `2^e + 1` per dimension (or 2 for bottomed-out dimensions) and access
//! is unit-stride. Matrices are never materialized — mass/transfer row
//! entries are recomputed from coordinate spacings on the fly, exactly like
//! the paper's implicit-matrix storage (§III-B).
//!
//! [`inplace`] additionally provides a functional CPU rendering of the
//! paper's six-region segmented in-place update (Figs. 5 & 6), validated
//! against the reference kernels.
//!
//! The serial variants are written the way the CPU MGARD baseline works
//! (fiber-by-fiber, in place, O(1) scratch); the parallel variants use the
//! plane-batched decomposition the paper adopts for its GPU linear kernels,
//! mapped onto rayon.

// Index loops mirror the stride arithmetic throughout this crate and are
// clearer than iterator chains for the kernel math.
#![allow(clippy::needless_range_loop)]

pub mod coeff;
pub mod correction;
pub mod inplace;
pub mod level;
pub mod mass;
pub mod solve;
pub mod transfer;

pub use correction::{compute_correction, CorrectionScratch, StageTimes};
pub use level::LevelCtx;

/// Execution strategy selector shared by the kernels.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Exec {
    /// Single-threaded reference implementation (the paper's CPU baseline).
    Serial,
    /// rayon data-parallel implementation.
    Parallel,
}
