//! The five computational kernels of multigrid-based hierarchical data
//! refactoring (paper §III-A), in serial-reference and rayon-parallel form.
//!
//! | Paper kernel | Type | Module |
//! |---|---|---|
//! | compute coefficients | grid processing | [`coeff::compute_serial`] / [`coeff::compute_parallel`] |
//! | restore from coefficients | grid processing | [`coeff::restore_serial`] / [`coeff::restore_parallel`] |
//! | mass matrix multiplication | linear processing | [`mass`] |
//! | transfer matrix multiplication | linear processing | [`transfer`] |
//! | correction solver | linear processing | [`solve`] |
//!
//! ## The layout axis
//!
//! *How* a level subgrid is touched is an explicit execution dimension
//! ([`ExecPlan`] = [`Threading`] × [`Layout`]), reproducing the paper's
//! central design comparison (§III-B/C, Figs. 5–7):
//!
//! * [`Layout::Packed`] — the driver gathers the level subgrid densely
//!   into working memory (`mg_grid::pack`) before a level's kernels run
//!   and scatters afterwards, so kernels see unit-stride `2^e + 1`
//!   extents. This is the paper's node-packing optimization.
//! * [`Layout::InPlace`] — kernels operate directly on the level subgrid
//!   *embedded* in the finest array through a stride-aware
//!   [`mg_grid::GridView`]; the grid-processing kernels update odd nodes
//!   in place ([`coeff::compute_view_serial`] and friends) and the linear
//!   pipeline uses the six-region segmented in-place update of [`inplace`]
//!   (Figs. 5 & 6), eliminating the per-level gather/scatter pass
//!   entirely.
//! * [`Layout::Tiled`] — the in-place design processed in cache-sized
//!   blocks of outermost rows with halo exchange at tile boundaries
//!   ([`tiled`]), so each tile's working set stays L2-resident and tiles
//!   parallelize across rayon workers even on the outermost axis.
//! * [`Layout::Strided`] — the naive baseline of Fig. 7: every kernel runs
//!   on the subgrid embedded in the finest array through stride-aware
//!   views, strides doubling per axis reduction. Deliberately
//!   cache-hostile; kept as the end-to-end reference curve.
//!
//! Every kernel additionally exposes a stride-aware `*_view` entry point
//! that runs unchanged on dense-packed or embedded-strided views — the
//! naive strided baseline of Fig. 7 is `GridView::embedded` fed to those
//! entries.
//!
//! Matrices are never materialized — mass/transfer row entries are
//! recomputed from coordinate spacings on the fly, exactly like the
//! paper's implicit-matrix storage (§III-B).
//!
//! The serial variants are written the way the CPU MGARD baseline works
//! (fiber-by-fiber, in place, O(1) scratch); the parallel variants use the
//! plane-batched decomposition the paper adopts for its GPU linear kernels,
//! mapped onto rayon.

// Index loops mirror the stride arithmetic throughout this crate and are
// clearer than iterator chains for the kernel math.
#![allow(clippy::needless_range_loop)]

pub mod coeff;
pub mod correction;
pub mod fused;
pub mod inplace;
pub mod level;
pub mod mass;
pub mod solve;
pub mod tiled;
pub mod transfer;

pub use correction::{compute_correction, CorrectionScratch, StageTimes};
pub use level::LevelCtx;
pub use tiled::DEFAULT_TILE;

/// Threading strategy of an execution plan.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Threading {
    /// Single-threaded reference implementation (the paper's CPU baseline).
    Serial,
    /// rayon data-parallel implementation.
    Parallel,
}

impl Threading {
    /// Lower-case tag (`"serial"` / `"parallel"`) for CLIs and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Threading::Serial => "serial",
            Threading::Parallel => "parallel",
        }
    }
}

impl std::fmt::Display for Threading {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Threading {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "serial" => Ok(Threading::Serial),
            "parallel" => Ok(Threading::Parallel),
            other => Err(format!("unknown threading {other:?} (serial|parallel)")),
        }
    }
}

/// Memory-layout strategy: how level subgrids are touched (paper §III-C).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Gather each level subgrid densely into working memory before the
    /// kernels run, scatter afterwards (node packing).
    Packed,
    /// Operate directly on the embedded strided subgrid with the
    /// six-region segmented in-place update — no gather/scatter pass.
    InPlace,
    /// Like [`Layout::InPlace`], but every kernel walks the data in
    /// cache-sized blocks of `tile` outermost rows with halo exchange at
    /// the block boundaries, and tiles run rayon-parallel — including on
    /// the outermost axis, where the segmented design is serial.
    Tiled {
        /// Outermost-dimension rows per tile (see [`tiled::DEFAULT_TILE`]).
        tile: usize,
    },
    /// The naive embedded-view design of the paper's Fig. 7: every kernel
    /// — including the whole correction pipeline — runs directly on the
    /// subgrid strided through the finest array, with strides doubling at
    /// each axis reduction. The cache-hostile baseline the other layouts
    /// are measured against.
    Strided,
}

impl Layout {
    /// Tiled layout with the default tile size.
    pub const fn tiled() -> Self {
        Layout::Tiled {
            tile: tiled::DEFAULT_TILE,
        }
    }

    /// Lower-case tag (`"packed"` / `"inplace"` / `"tiled"` /
    /// `"strided"`) for CLIs and reports; the tile size is not encoded.
    pub fn as_str(self) -> &'static str {
        match self {
            Layout::Packed => "packed",
            Layout::InPlace => "inplace",
            Layout::Tiled { .. } => "tiled",
            Layout::Strided => "strided",
        }
    }
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Layout {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "packed" => Ok(Layout::Packed),
            "inplace" | "in-place" => Ok(Layout::InPlace),
            "tiled" => Ok(Layout::tiled()),
            "strided" => Ok(Layout::Strided),
            other => {
                // "tiled:N" selects an explicit tile size.
                if let Some(n) = other.strip_prefix("tiled:") {
                    let tile: usize = n
                        .parse()
                        .map_err(|_| format!("bad tile size in layout {other:?}"))?;
                    if tile == 0 {
                        return Err("tile size must be >= 1".into());
                    }
                    return Ok(Layout::Tiled { tile });
                }
                Err(format!(
                    "unknown layout {other:?} (packed|inplace|tiled[:N]|strided)"
                ))
            }
        }
    }
}

/// Execution plan shared by the kernels and drivers: threading × layout.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ExecPlan {
    /// Serial reference or rayon-parallel kernels.
    pub threading: Threading,
    /// Packed gather/scatter or segmented in-place level access.
    pub layout: Layout,
}

impl ExecPlan {
    /// Every threading × layout combination (tiled at the default tile
    /// size), for exhaustive sweeps (tests, benches, the `bench_refactor`
    /// JSON emitter).
    pub const ALL: [ExecPlan; 8] = [
        ExecPlan::new(Threading::Serial, Layout::Packed),
        ExecPlan::new(Threading::Parallel, Layout::Packed),
        ExecPlan::new(Threading::Serial, Layout::InPlace),
        ExecPlan::new(Threading::Parallel, Layout::InPlace),
        ExecPlan::new(Threading::Serial, Layout::tiled()),
        ExecPlan::new(Threading::Parallel, Layout::tiled()),
        ExecPlan::new(Threading::Serial, Layout::Strided),
        ExecPlan::new(Threading::Parallel, Layout::Strided),
    ];

    /// Plan from explicit threading and layout.
    pub const fn new(threading: Threading, layout: Layout) -> Self {
        ExecPlan { threading, layout }
    }

    /// Serial threading, packed layout (the default).
    pub const fn serial() -> Self {
        Self::new(Threading::Serial, Layout::Packed)
    }

    /// Parallel threading, packed layout.
    pub const fn parallel() -> Self {
        Self::new(Threading::Parallel, Layout::Packed)
    }

    /// This plan with a different layout.
    pub const fn with_layout(self, layout: Layout) -> Self {
        Self::new(self.threading, layout)
    }

    /// This plan with a different threading strategy.
    pub const fn with_threading(self, threading: Threading) -> Self {
        Self::new(threading, self.layout)
    }
}

impl Default for ExecPlan {
    fn default() -> Self {
        Self::serial()
    }
}

impl From<Threading> for ExecPlan {
    fn from(threading: Threading) -> Self {
        Self::new(threading, Layout::Packed)
    }
}

impl From<Layout> for ExecPlan {
    fn from(layout: Layout) -> Self {
        Self::new(Threading::Serial, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders_compose() {
        assert_eq!(ExecPlan::default(), ExecPlan::serial());
        assert_eq!(
            ExecPlan::parallel().with_layout(Layout::InPlace),
            ExecPlan::new(Threading::Parallel, Layout::InPlace)
        );
        assert_eq!(ExecPlan::from(Threading::Parallel), ExecPlan::parallel());
        assert_eq!(
            ExecPlan::from(Layout::InPlace),
            ExecPlan::serial().with_layout(Layout::InPlace)
        );
    }

    #[test]
    fn tags_round_trip() {
        for t in [Threading::Serial, Threading::Parallel] {
            assert_eq!(t.as_str().parse::<Threading>().unwrap(), t);
        }
        for l in [
            Layout::Packed,
            Layout::InPlace,
            Layout::tiled(),
            Layout::Strided,
        ] {
            assert_eq!(l.as_str().parse::<Layout>().unwrap(), l);
        }
        assert_eq!(
            "tiled:128".parse::<Layout>().unwrap(),
            Layout::Tiled { tile: 128 }
        );
        assert!("tiled:0".parse::<Layout>().is_err());
        assert!("tiled:x".parse::<Layout>().is_err());
        assert!("gpu".parse::<Layout>().is_err());
        assert!("gpu".parse::<Threading>().is_err());
    }
}
