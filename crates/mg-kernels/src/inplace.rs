//! Segmented in-place linear processing — the paper's six-region
//! algorithm (Figs. 5 & 6), functionally.
//!
//! The GPU linear-processing framework updates each fiber *in place* by
//! iterating over fixed-size segments. At any moment the fiber is split
//! into six regions: processed / **main** (current segment, staged in
//! shared memory) / **ghost 1** (original value of the element before the
//! segment, held in a register) / **ghost 2** (original value of the
//! element after the segment) / **prefetch** (the next segment, loaded
//! while computing) / unprocessed. The ghosts exist because the 3-point
//! stencil needs *original* neighbour values that in-place stores would
//! otherwise destroy.
//!
//! This module reproduces that algorithm on the CPU — the segment buffer
//! plays the role of shared memory, the saved ghost scalars the role of
//! registers — and is validated against the reference kernels. It
//! processes along any axis by batching the `stride(axis)` interleaved
//! fibers of each outer block, exactly like the GPU's plane batching.

use crate::mass::mass_row;
use crate::transfer::restriction_weights;
use mg_grid::fiber::fiber_spec;
use mg_grid::{Axis, Real, Shape};
use rayon::prelude::*;

/// Default segment length (elements of each fiber staged per iteration);
/// mirrors `mg_gpu::kernels::SEGMENT`.
pub const DEFAULT_SEGMENT: usize = 64;

/// In-place mass-matrix multiply along `axis` using the six-region
/// segmented update.
///
/// Equivalent to [`crate::mass::mass_apply_serial`]; the segment length
/// only affects the staging pattern, never the result.
pub fn mass_apply_inplace_segmented<T: Real>(
    data: &mut [T],
    shape: Shape,
    axis: Axis,
    coords: &[T],
    segment: usize,
) {
    let spec = fiber_spec(shape, axis);
    assert_eq!(data.len(), shape.len());
    assert_eq!(coords.len(), spec.len);
    assert!(segment >= 1);
    let h: Vec<T> = coords.windows(2).map(|w| w[1] - w[0]).collect();
    let n = spec.len;
    let inner = spec.stride;
    let block = n * inner;

    // Staging buffers, one lane per interleaved fiber of the block.
    let mut main = vec![T::ZERO; segment * inner];
    let mut ghost1 = vec![T::ZERO; inner]; // original v[a-1]
    let mut ghost1_next = vec![T::ZERO; inner];

    for blk in data.chunks_mut(block) {
        // ghost1 starts undefined; row 0 has no left neighbour.
        let mut a = 0usize;
        while a < n {
            let b = (a + segment).min(n);
            let seg_len = b - a;
            // Stage the main region (the "shared memory" copy).
            main[..seg_len * inner].copy_from_slice(&blk[a * inner..b * inner]);
            // Save the original of the segment's last element: it becomes
            // ghost1 for the next iteration (register save in the paper).
            ghost1_next.copy_from_slice(&blk[(b - 1) * inner..b * inner]);

            for i in a..b {
                let (ca, cb, cc) = mass_row(&h, i);
                let li = (i - a) * inner; // local row in main
                for kk in 0..inner {
                    let mut t = cb * main[li + kk];
                    if i > 0 {
                        // left neighbour: ghost1 at the segment head,
                        // staged main otherwise
                        let left = if i == a {
                            ghost1[kk]
                        } else {
                            main[li - inner + kk]
                        };
                        t += ca * left;
                    }
                    if i + 1 < n {
                        // right neighbour: staged main inside the
                        // segment, ghost2 (still-original global value)
                        // at the tail
                        let right = if i + 1 == b {
                            blk[b * inner + kk]
                        } else {
                            main[li + inner + kk]
                        };
                        t += cc * right;
                    }
                    blk[i * inner + kk] = t;
                }
            }
            std::mem::swap(&mut ghost1, &mut ghost1_next);
            a = b;
        }
    }
}

/// Parallel six-region segmented mass multiply: identical arithmetic to
/// [`mass_apply_inplace_segmented`], with the independent outer blocks
/// (slabs of `dim(axis) * stride(axis)` elements) distributed over rayon.
/// Each block stages into its own segment buffer (the per-thread-block
/// shared memory of the GPU design). For `axis == 0` there is a single
/// block, so this degrades to the serial walk — the GPU gets its axis-0
/// parallelism from the interleaved lanes, which a CPU thread vectorizes
/// over instead.
pub fn mass_apply_inplace_segmented_parallel<T: Real>(
    data: &mut [T],
    shape: Shape,
    axis: Axis,
    coords: &[T],
    segment: usize,
) {
    let spec = fiber_spec(shape, axis);
    assert_eq!(data.len(), shape.len());
    assert_eq!(coords.len(), spec.len);
    assert!(segment >= 1);
    let h: Vec<T> = coords.windows(2).map(|w| w[1] - w[0]).collect();
    let n = spec.len;
    let inner = spec.stride;
    let block = n * inner;
    let h = &h;

    // Group blocks into a bounded number of tasks so the staging buffers
    // are allocated once per task, not once per block (the last axis of a
    // large 3-D grid has tens of thousands of tiny blocks).
    let nblocks = data.len() / block;
    let task = nblocks.div_ceil(256).max(1) * block;

    data.par_chunks_mut(task).for_each(|chunk| {
        let mut main = vec![T::ZERO; segment * inner];
        let mut ghost1 = vec![T::ZERO; inner];
        let mut ghost1_next = vec![T::ZERO; inner];
        for blk in chunk.chunks_mut(block) {
            let mut a = 0usize;
            while a < n {
                let b = (a + segment).min(n);
                let seg_len = b - a;
                main[..seg_len * inner].copy_from_slice(&blk[a * inner..b * inner]);
                ghost1_next.copy_from_slice(&blk[(b - 1) * inner..b * inner]);
                for i in a..b {
                    let (ca, cb, cc) = mass_row(h, i);
                    let li = (i - a) * inner;
                    for kk in 0..inner {
                        let mut t = cb * main[li + kk];
                        if i > 0 {
                            let left = if i == a {
                                ghost1[kk]
                            } else {
                                main[li - inner + kk]
                            };
                            t += ca * left;
                        }
                        if i + 1 < n {
                            let right = if i + 1 == b {
                                blk[b * inner + kk]
                            } else {
                                main[li + inner + kk]
                            };
                            t += cc * right;
                        }
                        blk[i * inner + kk] = t;
                    }
                }
                std::mem::swap(&mut ghost1, &mut ghost1_next);
                a = b;
            }
        }
    });
}

/// In-place transfer-matrix multiply along `axis`: writes the coarse
/// fiber over the head of each fine fiber (coarse node `j` lands at local
/// index `j`).
///
/// Safe in place because coarse index `j` only reads fine indices
/// `>= 2j - 1 >= j` when walked forward. The tail of each fiber
/// (`(n+1)/2 ..`) is left as-is; callers compact it away (the paper fuses
/// that with node packing).
pub fn transfer_apply_inplace<T: Real>(
    data: &mut [T],
    shape: Shape,
    axis: Axis,
    fine_coords: &[T],
) {
    let spec = fiber_spec(shape, axis);
    assert_eq!(data.len(), shape.len());
    let n = spec.len;
    assert_eq!(fine_coords.len(), n);
    assert!(n >= 3 && n % 2 == 1, "transfer needs a decimating axis");
    let m = n.div_ceil(2);
    let (wl, wr) = restriction_weights::<T>(fine_coords);
    let inner = spec.stride;
    let block = n * inner;

    // One lane-row of saved originals: v[2j] is overwritten by out[j]
    // when j == 2j (j = 0) only, but v[2j-1] (odd) sits at index 2j-1
    // which was overwritten by out[2j-1]... only once 2j-1 < m, i.e. the
    // safe-forward argument: reads for output j touch indices 2j-1, 2j,
    // 2j+1, all >= j except when j <= 1; handle j = 0, 1 with explicit
    // saves.
    for blk in data.chunks_mut(block) {
        for kk in 0..inner {
            // Save the two values the first outputs both read and clobber.
            let v0 = blk[kk];
            let v1 = blk[inner + kk];
            // j = 0: v[0] + wr[0] * v[1]
            blk[kk] = v0 + wr[0] * v1;
            // j = 1 reads 1, 2, 3 and writes 1.
            if m > 1 {
                let t = blk[2 * inner + kk]
                    + wl[1] * v1
                    + if m > 2 {
                        wr[1] * blk[3 * inner + kk]
                    } else {
                        T::ZERO
                    };
                blk[inner + kk] = t;
            }
        }
        for j in 2..m {
            let row = 2 * j * inner;
            for kk in 0..inner {
                let mut t = blk[row + kk] + wl[j] * blk[row - inner + kk];
                if j + 1 < m {
                    t += wr[j] * blk[row + inner + kk];
                }
                blk[j * inner + kk] = t;
            }
        }
    }
}

/// Parallel in-place transfer: the outer blocks are independent, so each
/// runs the [`transfer_apply_inplace`] update on its own rayon chunk.
pub fn transfer_apply_inplace_parallel<T: Real>(
    data: &mut [T],
    shape: Shape,
    axis: Axis,
    fine_coords: &[T],
) {
    let spec = fiber_spec(shape, axis);
    assert_eq!(data.len(), shape.len());
    let n = spec.len;
    assert_eq!(fine_coords.len(), n);
    assert!(n >= 3 && n % 2 == 1, "transfer needs a decimating axis");
    let m = n.div_ceil(2);
    let (wl, wr) = restriction_weights::<T>(fine_coords);
    let inner = spec.stride;
    let block = n * inner;
    let (wl, wr) = (&wl, &wr);

    data.par_chunks_mut(block).for_each(|blk| {
        for kk in 0..inner {
            let v0 = blk[kk];
            let v1 = blk[inner + kk];
            blk[kk] = v0 + wr[0] * v1;
            if m > 1 {
                let t = blk[2 * inner + kk]
                    + wl[1] * v1
                    + if m > 2 {
                        wr[1] * blk[3 * inner + kk]
                    } else {
                        T::ZERO
                    };
                blk[inner + kk] = t;
            }
        }
        for j in 2..m {
            let row = 2 * j * inner;
            for kk in 0..inner {
                let mut t = blk[row + kk] + wl[j] * blk[row - inner + kk];
                if j + 1 < m {
                    t += wr[j] * blk[row + inner + kk];
                }
                blk[j * inner + kk] = t;
            }
        }
    });
}

/// Compact the coarse results after an in-place transfer along `axis`:
/// each `dim(axis) * stride(axis)` block holds its coarse fiber heads in
/// its first `(n+1)/2 * stride(axis)` elements; slide the blocks together
/// so `data[..coarse_shape.len()]` becomes the dense coarse-extent array.
/// This is the tail compaction the paper fuses with node packing.
pub fn compact_coarse<T: Copy>(data: &mut [T], shape: Shape, axis: Axis) -> Shape {
    let spec = fiber_spec(shape, axis);
    assert_eq!(data.len(), shape.len());
    let n = spec.len;
    let m = n.div_ceil(2);
    let inner = spec.stride;
    let block = n * inner;
    let cblock = m * inner;
    let nblocks = shape.len() / block;
    for b in 1..nblocks {
        data.copy_within(b * block..b * block + cblock, b * cblock);
    }
    shape.with_dim(axis, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mass::mass_apply_serial;
    use crate::transfer::transfer_apply_serial;
    use mg_grid::real::max_abs_diff;

    fn field(shape: Shape) -> Vec<f64> {
        (0..shape.len())
            .map(|i| ((i * 43 + 5) % 97) as f64 * 0.041 - 2.0)
            .collect()
    }

    #[test]
    fn segmented_mass_matches_reference_all_segment_sizes() {
        let shape = Shape::d1(129);
        let coords: Vec<f64> = (0..129).map(|i| i as f64 + (i % 5) as f64 * 0.1).collect();
        let src = field(shape);
        let mut expect = src.clone();
        mass_apply_serial(&mut expect, shape, Axis(0), &coords);
        for segment in [1usize, 2, 7, 64, 128, 129, 500] {
            let mut got = src.clone();
            mass_apply_inplace_segmented(&mut got, shape, Axis(0), &coords, segment);
            assert!(max_abs_diff(&got, &expect) < 1e-13, "segment {segment}");
        }
    }

    #[test]
    fn segmented_mass_matches_on_every_axis_3d() {
        let shape = Shape::d3(9, 17, 5);
        let src = field(shape);
        for ax in 0..3 {
            let n = shape.dim(Axis(ax));
            let coords: Vec<f64> = (0..n).map(|i| (i as f64).mul_add(0.3, 1.0)).collect();
            let mut expect = src.clone();
            mass_apply_serial(&mut expect, shape, Axis(ax), &coords);
            let mut got = src.clone();
            mass_apply_inplace_segmented(&mut got, shape, Axis(ax), &coords, 4);
            assert!(max_abs_diff(&got, &expect) < 1e-13, "axis {ax}");
        }
    }

    #[test]
    fn inplace_transfer_matches_reference() {
        for n in [3usize, 5, 9, 33, 129] {
            let shape = Shape::d1(n);
            let coords: Vec<f64> = (0..n)
                .map(|i| i as f64 * 0.5 + (i % 3) as f64 * 0.04)
                .collect();
            let src = field(shape);
            let m = n.div_ceil(2);
            let mut expect = vec![0.0f64; m];
            transfer_apply_serial(&src, shape, &mut expect, Axis(0), &coords);
            let mut got = src.clone();
            transfer_apply_inplace(&mut got, shape, Axis(0), &coords);
            assert!(
                max_abs_diff(&got[..m], &expect) < 1e-13,
                "n = {n}: {:?} vs {expect:?}",
                &got[..m]
            );
        }
    }

    #[test]
    fn inplace_transfer_multi_fiber() {
        let shape = Shape::d2(9, 7); // transfer along axis 0: 7 interleaved fibers
        let coords: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let src = field(shape);
        let mut expect = vec![0.0f64; 5 * 7];
        transfer_apply_serial(&src, shape, &mut expect, Axis(0), &coords);
        let mut got = src.clone();
        transfer_apply_inplace(&mut got, shape, Axis(0), &coords);
        for j in 0..5 {
            for k in 0..7 {
                assert!((got[j * 7 + k] - expect[j * 7 + k]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn parallel_segmented_matches_serial_all_axes() {
        let shape = Shape::d3(9, 17, 5);
        let src = field(shape);
        for ax in 0..3 {
            let n = shape.dim(Axis(ax));
            let coords: Vec<f64> = (0..n).map(|i| (i as f64).mul_add(0.7, 0.2)).collect();
            let mut ser = src.clone();
            mass_apply_inplace_segmented(&mut ser, shape, Axis(ax), &coords, 4);
            let mut par = src.clone();
            mass_apply_inplace_segmented_parallel(&mut par, shape, Axis(ax), &coords, 4);
            assert_eq!(ser, par, "mass axis {ax}");

            if n >= 3 && n % 2 == 1 {
                let mut ser = src.clone();
                transfer_apply_inplace(&mut ser, shape, Axis(ax), &coords);
                let mut par = src.clone();
                transfer_apply_inplace_parallel(&mut par, shape, Axis(ax), &coords);
                assert_eq!(ser, par, "transfer axis {ax}");
            }
        }
    }

    #[test]
    fn compact_after_transfer_matches_out_of_place() {
        let shape = Shape::d3(5, 9, 5);
        let src = field(shape);
        for ax in 0..3 {
            let n = shape.dim(Axis(ax));
            let coords: Vec<f64> = (0..n).map(|i| i as f64 * 0.3 + 0.1).collect();
            let m = n.div_ceil(2);
            let cshape = shape.with_dim(Axis(ax), m);
            let mut expect = vec![0.0f64; cshape.len()];
            transfer_apply_serial(&src, shape, &mut expect, Axis(ax), &coords);
            let mut got = src.clone();
            transfer_apply_inplace(&mut got, shape, Axis(ax), &coords);
            let out_shape = compact_coarse(&mut got, shape, Axis(ax));
            assert_eq!(out_shape, cshape);
            assert!(
                max_abs_diff(&got[..cshape.len()], &expect) < 1e-13,
                "axis {ax}"
            );
        }
    }

    #[test]
    fn f32_segmented_mass() {
        let shape = Shape::d1(65);
        let coords: Vec<f32> = (0..65).map(|i| i as f32).collect();
        let src: Vec<f32> = (0..65).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut expect = src.clone();
        mass_apply_serial(&mut expect, shape, Axis(0), &coords);
        let mut got = src.clone();
        mass_apply_inplace_segmented(&mut got, shape, Axis(0), &coords, DEFAULT_SEGMENT);
        assert!(max_abs_diff(&got, &expect) < 1e-5);
    }
}
