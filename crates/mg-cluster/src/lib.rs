//! Multi-node weak-scaling simulator (paper §IV-B.4, Fig. 9).
//!
//! The paper parallelizes refactoring by giving every GPU an independent
//! 1 GB partition (one MPI rank per GPU, 4 GPUs per Summit node in the
//! experiment) — embarrassingly parallel, so weak scaling is governed by
//! per-rank throughput, host staging, and straggler jitter. This crate
//! models exactly that and also the single-node all-GPUs vs all-cores
//! comparison of Table VI.

pub mod offload;

use gpu_sim::cpu::CpuSpec;
use gpu_sim::device::DeviceSpec;
use mg_gpu::kernels::Variant;
use mg_gpu::sim::{cpu_decompose, cpu_recompose, sim_decompose, sim_recompose};
use mg_grid::{Hierarchy, Shape};
use serde::{Deserialize, Serialize};

/// Weak-scaling experiment configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeakScaling {
    /// Grid each rank owns (paper: ~1 GB of doubles).
    pub rank_dims: Vec<usize>,
    /// GPUs (= ranks) per node (paper: 4).
    pub gpus_per_node: usize,
    /// Host<->device staging bandwidth per GPU, bytes/s (NVLink-class).
    pub staging_bw: f64,
    /// Relative per-rank runtime jitter (straggler spread), e.g. 0.03.
    pub jitter: f64,
    /// MPI completion-barrier latency coefficient (seconds per log2 P).
    pub barrier_coeff: f64,
}

impl Default for WeakScaling {
    fn default() -> Self {
        WeakScaling {
            // 8193^2 doubles = 0.537 GB per rank in 2-D.
            rank_dims: vec![8193, 8193],
            gpus_per_node: 4,
            staging_bw: 40.0e9,
            jitter: 0.03,
            barrier_coeff: 8.0e-6,
        }
    }
}

/// One point of the weak-scaling curve.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Number of GPUs (ranks) in this run.
    pub gpus: usize,
    /// Wall-clock of the slowest rank, seconds.
    pub seconds: f64,
    /// Aggregate useful throughput, bytes/s.
    pub throughput: f64,
    /// Parallel efficiency vs one GPU.
    pub efficiency: f64,
}

impl WeakScaling {
    fn rank_bytes(&self) -> u64 {
        self.rank_dims.iter().product::<usize>() as u64 * 8
    }

    /// Deterministic per-rank jitter factor in `[1, 1 + jitter]`.
    fn jitter_factor(&self, rank: usize) -> f64 {
        let mut x = rank as u64 ^ 0x9E37_79B9_7F4A_7C15;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        let u = (x >> 40) as f64 / (1u64 << 24) as f64; // [0,1)
        1.0 + self.jitter * u
    }

    /// Simulate one operation at `gpus` ranks; `recompose` selects the
    /// direction.
    pub fn run(&self, dev: &DeviceSpec, gpus: usize, recompose: bool) -> ScalePoint {
        assert!(gpus >= 1);
        let shape = Shape::new(&self.rank_dims);
        let hier = Hierarchy::new(shape).expect("rank grid must be dyadic");
        let breakdown = if recompose {
            sim_recompose(&hier, 8, dev, Variant::Framework)
        } else {
            sim_decompose(&hier, 8, dev, Variant::Framework)
        };
        // Stage data in and out of the device once per operation.
        let staging = 2.0 * self.rank_bytes() as f64 / self.staging_bw;
        let base = breakdown.total() + staging;

        // Slowest rank + completion barrier.
        let slowest = (0..gpus)
            .map(|r| self.jitter_factor(r))
            .fold(0.0f64, f64::max)
            * base;
        let barrier = self.barrier_coeff * (gpus as f64).log2().max(0.0);
        let seconds = slowest + barrier;

        let total_bytes = self.rank_bytes() * gpus as u64;
        let t1 = base + 0.0; // single-GPU reference (no jitter, no barrier)
        ScalePoint {
            gpus,
            seconds,
            throughput: total_bytes as f64 / seconds,
            efficiency: t1 / seconds,
        }
    }

    /// Sweep the GPU counts (paper: 1..4096 by powers of two).
    pub fn sweep(&self, dev: &DeviceSpec, counts: &[usize], recompose: bool) -> Vec<ScalePoint> {
        counts
            .iter()
            .map(|&g| self.run(dev, g, recompose))
            .collect()
    }
}

/// Strong scaling: a *fixed* total dataset is split into ever-smaller
/// per-rank partitions as GPUs are added. Unlike the paper's weak-scaling
/// experiment, efficiency decays once partitions are small enough that
/// per-kernel fixed costs dominate — the simulator exposes where that
/// knee sits.
#[derive(Clone, Debug)]
pub struct StrongScaling {
    /// Total square 2-D dataset extent (must stay dyadic when split:
    /// partitions divide along the first axis in dyadic halves).
    pub total_dims: Vec<usize>,
    /// Host<->device staging bandwidth per GPU, bytes/s.
    pub staging_bw: f64,
}

impl StrongScaling {
    /// Simulate `gpus` ranks (power of two); each rank refactors a
    /// `1/gpus` slab of the data (the slab keeps the full extent along
    /// the remaining axes and a dyadic fraction along axis 0).
    pub fn run(&self, dev: &DeviceSpec, gpus: usize) -> ScalePoint {
        assert!(gpus.is_power_of_two(), "split in dyadic halves");
        let full0 = self.total_dims[0] - 1; // 2^k
        assert!(
            full0.is_multiple_of(gpus) && full0 / gpus >= 2,
            "cannot split {} ways",
            gpus
        );
        let mut dims = self.total_dims.clone();
        dims[0] = full0 / gpus + 1;
        let shape = Shape::new(&dims);
        let hier = Hierarchy::new(shape).expect("dyadic slab");
        let per_rank = sim_decompose(&hier, 8, dev, Variant::Framework).total();
        let rank_bytes = shape.len() as u64 * 8;
        let staging = 2.0 * rank_bytes as f64 / self.staging_bw;
        let seconds = per_rank + staging;

        // Reference: one GPU holding everything.
        let full_hier = Hierarchy::new(Shape::new(&self.total_dims)).unwrap();
        let t1 = sim_decompose(&full_hier, 8, dev, Variant::Framework).total()
            + 2.0 * (full_hier.finest().len() as u64 * 8) as f64 / self.staging_bw;

        let total_bytes = full_hier.finest().len() as u64 * 8;
        ScalePoint {
            gpus,
            seconds,
            throughput: total_bytes as f64 / seconds,
            efficiency: t1 / (seconds * gpus as f64),
        }
    }
}

/// Table VI: one desktop / one Summit node, all GPUs vs all CPU cores.
#[derive(Clone, Debug)]
pub struct NodeComparison {
    /// GPU model on the node.
    pub dev: DeviceSpec,
    /// GPUs per node.
    pub gpus: usize,
    /// CPU core model (the `cores` field sets the core count).
    pub cpu: CpuSpec,
    /// Parallel efficiency of the multicore CPU run (OpenMP-style).
    pub cpu_parallel_efficiency: f64,
}

impl NodeComparison {
    /// One Summit node: 6 V100s vs 2x21 POWER9 cores.
    pub fn summit_node() -> Self {
        NodeComparison {
            dev: DeviceSpec::v100(),
            gpus: 6,
            cpu: CpuSpec::power9(),
            cpu_parallel_efficiency: 0.70,
        }
    }

    /// The paper's desktop: 1 RTX 2080 Ti vs 8 i7 cores.
    pub fn desktop() -> Self {
        NodeComparison {
            dev: DeviceSpec::rtx2080ti(),
            gpus: 1,
            cpu: CpuSpec::i7_9700k(),
            cpu_parallel_efficiency: 0.80,
        }
    }

    /// Speedup of all GPUs over all CPU cores for a workload of
    /// `partitions` independent grids of the given shape (the paper
    /// splits the node-level input across GPUs the same way).
    pub fn speedup(&self, dims: &[usize], partitions: usize, recompose: bool) -> f64 {
        let shape = Shape::new(dims);
        let hier = Hierarchy::new(shape).expect("dyadic");
        let gpu_one = if recompose {
            sim_recompose(&hier, 8, &self.dev, Variant::Framework).total()
        } else {
            sim_decompose(&hier, 8, &self.dev, Variant::Framework).total()
        };
        // Partitions round-robin over the GPUs.
        let rounds = partitions.div_ceil(self.gpus);
        let gpu_total = gpu_one * rounds as f64;

        let cpu_one = if recompose {
            cpu_recompose(&hier, 8, &self.cpu).total()
        } else {
            cpu_decompose(&hier, 8, &self.cpu).total()
        };
        let cpu_total =
            cpu_one * partitions as f64 / (self.cpu.cores as f64 * self.cpu_parallel_efficiency);

        cpu_total / gpu_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_is_nearly_linear() {
        let ws = WeakScaling::default();
        let dev = DeviceSpec::v100();
        let pts = ws.sweep(&dev, &[1, 16, 256, 4096], false);
        for p in &pts {
            assert!(
                p.efficiency > 0.90,
                "efficiency at {} GPUs: {}",
                p.gpus,
                p.efficiency
            );
        }
        // Throughput grows ~linearly.
        assert!(pts[3].throughput / pts[0].throughput > 3500.0);
    }

    #[test]
    fn throughput_at_4096_matches_paper_order() {
        // Paper Fig. 9: 45.42 TB/s decomposition at 4096 GPUs in 2-D.
        let ws = WeakScaling::default();
        let dev = DeviceSpec::v100();
        let p = ws.run(&dev, 4096, false);
        let tbps = p.throughput / 1e12;
        assert!(
            (10.0..120.0).contains(&tbps),
            "2-D aggregate {tbps:.1} TB/s should be tens of TB/s"
        );
    }

    #[test]
    fn three_d_is_slower_than_two_d() {
        // Paper: 17.78 TB/s (3-D) vs 45.42 TB/s (2-D).
        let dev = DeviceSpec::v100();
        let ws2 = WeakScaling::default();
        let ws3 = WeakScaling {
            rank_dims: vec![513, 513, 513],
            ..WeakScaling::default()
        };
        let t2 = ws2.run(&dev, 4096, false).throughput;
        let t3 = ws3.run(&dev, 4096, false).throughput;
        assert!(t2 > t3, "2D {t2:.3e} vs 3D {t3:.3e}");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let ws = WeakScaling::default();
        for r in 0..100 {
            let f = ws.jitter_factor(r);
            assert!((1.0..=1.0 + ws.jitter).contains(&f));
            assert_eq!(f, ws.jitter_factor(r));
        }
    }

    #[test]
    fn summit_node_beats_desktop() {
        // Table VI: Summit node (6 V100s vs 42 POWER9 cores) shows larger
        // 2-D speedups than the desktop (1 RTX vs 8 i7 cores).
        let summit = NodeComparison::summit_node().speedup(&[4097, 4097], 12, false);
        let desktop = NodeComparison::desktop().speedup(&[4097, 4097], 12, false);
        assert!(
            summit > desktop,
            "summit {summit:.1} vs desktop {desktop:.1}"
        );
        assert!(summit > 5.0 && summit < 400.0, "summit {summit}");
        assert!(desktop > 1.0, "desktop {desktop}");
    }

    #[test]
    fn strong_scaling_efficiency_decays() {
        let ss = StrongScaling {
            total_dims: vec![4097, 4097],
            staging_bw: 40.0e9,
        };
        let dev = DeviceSpec::v100();
        let mut last_eff = f64::INFINITY;
        let mut effs = Vec::new();
        for g in [1usize, 4, 16, 64] {
            let p = ss.run(&dev, g);
            assert!(p.efficiency <= last_eff * 1.01, "{effs:?}");
            last_eff = p.efficiency;
            effs.push((g, p.efficiency));
        }
        // Speedup still positive but sublinear at 64 ranks.
        let e64 = effs.last().unwrap().1;
        assert!(
            e64 < 0.95,
            "strong scaling should lose efficiency: {effs:?}"
        );
        assert!(e64 > 0.05, "but not collapse: {effs:?}");
    }

    #[test]
    fn recompose_scaling_also_works() {
        let ws = WeakScaling::default();
        let dev = DeviceSpec::v100();
        let p = ws.run(&dev, 64, true);
        assert!(p.throughput > 0.0 && p.efficiency > 0.8);
    }
}
