//! Offload economics (paper §I): when does shipping data to a GPU pay?
//!
//! "For CPU-based scientific applications ... it can be cost-effective to
//! offload the data refactoring workloads to GPUs when they are
//! available, especially given that fast CPU-GPU interconnections such as
//! PCIe and NVLinks are available" — and for GPU-resident data, GPUDirect
//! avoids the trip back through the host entirely. This module prices the
//! three strategies for a given grid.

use gpu_sim::cpu::CpuSpec;
use gpu_sim::device::DeviceSpec;
use gpu_sim::interconnect::{export_cost, Interconnect};
use mg_gpu::kernels::Variant;
use mg_gpu::sim::{cpu_decompose, sim_decompose};
use mg_grid::{Hierarchy, Shape};

/// Host memory copy bandwidth used when staging through the host.
const HOST_COPY_BW: f64 = 20.0e9;

/// Cost of each refactor-and-export strategy, seconds.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct OffloadCosts {
    /// Refactor on the CPU core where the data lives.
    pub cpu_local: f64,
    /// Ship to the GPU over `link`, refactor there, ship back.
    pub gpu_offload: f64,
    /// Data already on the GPU; refactor and export via GPUDirect.
    pub gpu_direct: f64,
}

impl OffloadCosts {
    /// Whether offloading beats staying on the CPU.
    pub fn offload_wins(&self) -> bool {
        self.gpu_offload < self.cpu_local
    }
}

/// Price the three strategies for one decomposition of `dims`.
pub fn offload_costs(
    dims: &[usize],
    dev: &DeviceSpec,
    cpu: &CpuSpec,
    link: &Interconnect,
) -> OffloadCosts {
    let shape = Shape::new(dims);
    let hier = Hierarchy::new(shape).expect("dyadic grid");
    let bytes = (shape.len() * 8) as u64;

    let cpu_local = cpu_decompose(&hier, 8, cpu).total();
    let gpu_compute = sim_decompose(&hier, 8, dev, Variant::Framework).total();

    // CPU-resident data: in over the link, compute, then export — back
    // over the link and relayed out of host memory (the path GPUDirect
    // exists to avoid).
    let gpu_offload =
        link.transfer_time(bytes) + gpu_compute + export_cost(link, bytes, HOST_COPY_BW);

    // GPU-resident data: compute in place, export refactored bytes via
    // GPUDirect instead of relaying through host memory.
    let gpu_direct = gpu_compute + export_cost(&Interconnect::gpudirect(), bytes, HOST_COPY_BW);

    OffloadCosts {
        cpu_local,
        gpu_offload,
        gpu_direct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_wins_for_large_grids_even_over_pcie() {
        let c = offload_costs(
            &[4097, 4097],
            &DeviceSpec::v100(),
            &CpuSpec::power9(),
            &Interconnect::pcie3(),
        );
        assert!(c.offload_wins(), "{c:?}");
        assert!(c.cpu_local / c.gpu_offload > 5.0, "{c:?}");
    }

    #[test]
    fn offload_loses_for_tiny_grids() {
        let c = offload_costs(
            &[33, 33],
            &DeviceSpec::v100(),
            &CpuSpec::power9(),
            &Interconnect::pcie3(),
        );
        assert!(!c.offload_wins(), "{c:?}");
    }

    #[test]
    fn nvlink_improves_the_offload_case() {
        let pcie = offload_costs(
            &[2049, 2049],
            &DeviceSpec::v100(),
            &CpuSpec::power9(),
            &Interconnect::pcie3(),
        );
        let nvlink = offload_costs(
            &[2049, 2049],
            &DeviceSpec::v100(),
            &CpuSpec::power9(),
            &Interconnect::nvlink2(),
        );
        assert!(nvlink.gpu_offload < pcie.gpu_offload);
    }

    #[test]
    fn gpu_resident_data_is_cheapest_at_scale() {
        let c = offload_costs(
            &[513, 513, 513],
            &DeviceSpec::v100(),
            &CpuSpec::power9(),
            &Interconnect::nvlink2(),
        );
        assert!(c.gpu_direct < c.gpu_offload);
        assert!(c.gpu_direct < c.cpu_local);
    }

    #[test]
    fn crossover_exists_and_is_monotone() {
        // As grids grow, the offload advantage strictly improves.
        let mut last_ratio = 0.0;
        for n in [65usize, 257, 1025, 4097] {
            let c = offload_costs(
                &[n, n],
                &DeviceSpec::v100(),
                &CpuSpec::power9(),
                &Interconnect::pcie3(),
            );
            let ratio = c.cpu_local / c.gpu_offload;
            assert!(ratio > last_ratio, "n = {n}: {ratio} <= {last_ratio}");
            last_ratio = ratio;
        }
    }
}
